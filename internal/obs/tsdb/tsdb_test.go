package tsdb

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"resilientmix/internal/obs"
)

func TestKeyRoundTrip(t *testing.T) {
	cases := []struct {
		name   string
		labels Labels
		want   string
	}{
		{"live_frames_out", nil, "live_frames_out"},
		{"up", L("node", "3"), `up{node="3"}`},
		{"m", L("b", "2", "a", "1"), `m{a="1",b="2"}`},
		{"m", L("x", `quo"te\back`+"\nnl"), `m{x="quo\"te\\back\nnl"}`},
	}
	for _, c := range cases {
		got := Key(c.name, c.labels)
		if got != c.want {
			t.Errorf("Key(%q, %v) = %q, want %q", c.name, c.labels, got, c.want)
		}
		name, labels, err := ParseKey(got)
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", got, err)
		}
		if Key(name, labels) != got {
			t.Errorf("ParseKey(%q) does not round-trip: %q %v", got, name, labels)
		}
	}
	for _, bad := range []string{`m{a="1"`, `m{a=1}`, `m{a="1\q"}`, `m{a="unterminated}`} {
		if _, _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) succeeded, want error", bad)
		}
	}
}

func TestRingWrap(t *testing.T) {
	db := New(4)
	for i := 0; i < 10; i++ {
		db.Append("c", nil, int64(i)*1e6, float64(i))
	}
	s := db.Get("c", nil)
	if s.Len() != 4 || s.Total() != 10 {
		t.Fatalf("Len=%d Total=%d, want 4, 10", s.Len(), s.Total())
	}
	pts := s.Points()
	for i, p := range pts {
		if want := float64(6 + i); p.V != want {
			t.Fatalf("point %d = %v, want %v", i, p.V, want)
		}
	}
	if last, ok := s.Latest(); !ok || last.V != 9 {
		t.Fatalf("Latest = %v, %v", last, ok)
	}
}

func TestQueries(t *testing.T) {
	db := New(64)
	// A counter ticking 10/s for 10s, with a reset at t=6s.
	for i := 0; i <= 10; i++ {
		v := float64(i * 10)
		if i >= 6 {
			v = float64((i - 6) * 10) // restarted at 0
		}
		db.Append("ctr", nil, int64(i)*1e6, v)
	}
	s := db.Get("ctr", nil)
	// 50 observed before the reset, 40 after: the reset step
	// contributes the post-reset value, not an underflow.
	inc, ok := s.CounterDelta(0)
	if !ok || inc != 90 {
		t.Fatalf("CounterDelta = %v, %v, want 90 (reset-aware)", inc, ok)
	}
	rate, ok := s.RatePerSec(0)
	if !ok || rate != 9 {
		t.Fatalf("RatePerSec = %v, %v, want 9", rate, ok)
	}
	// Windowed: points at t=7..10 (v=10,20,30,40) fall in the last
	// 3 seconds, three increments of 10 each.
	if inc, _ := s.CounterDelta(3e6); inc != 30 {
		t.Fatalf("CounterDelta(3s) = %v, want 30", inc)
	}

	g := New(64)
	for i := 0; i <= 4; i++ {
		g.Append("gauge", nil, int64(i)*1e6, float64(i*i))
	}
	gs := g.Get("gauge", nil)
	if d, ok := gs.Delta(0); !ok || d != 16 {
		t.Fatalf("Delta = %v, %v, want 16", d, ok)
	}
	if q := gs.WindowQuantile(0.5, 0); q != 4 {
		t.Fatalf("median = %v, want 4", q)
	}
	if q := gs.WindowQuantile(1, 0); q != 16 {
		t.Fatalf("max = %v, want 16", q)
	}
	if q := gs.WindowQuantile(0, 0); q != 0 {
		t.Fatalf("min = %v, want 0", q)
	}

	rates := s.TailRates(3)
	if len(rates) != 3 {
		t.Fatalf("TailRates len = %d, want 3", len(rates))
	}
	for _, r := range rates {
		if r != 10 {
			t.Fatalf("TailRates = %v, want all 10", rates)
		}
	}
}

func TestMatchAndBounds(t *testing.T) {
	db := New(8)
	db.Append("live_frames_in_data", L("node", "0"), 1e6, 1)
	db.Append("live_frames_in_ack", L("node", "0"), 2e6, 1)
	db.Append("live_frames_out", L("node", "1"), 3e6, 1)
	if got := len(db.Match("live_frames_in_*")); got != 2 {
		t.Fatalf("Match prefix = %d series, want 2", got)
	}
	if got := len(db.Match("live_frames_out")); got != 1 {
		t.Fatalf("Match exact = %d series, want 1", got)
	}
	first, last, ok := db.Bounds()
	if !ok || first != 1e6 || last != 3e6 {
		t.Fatalf("Bounds = %v, %v, %v", first, last, ok)
	}
}

// TestDeterministicEncoding pins the on-disk byte format: equal DBs
// must dump to equal bytes, and the bytes themselves are golden.
func TestDeterministicEncoding(t *testing.T) {
	build := func() *DB {
		db := New(8)
		db.Append("up", L("node", "0"), 1_000_000, 1)
		db.Append("up", L("node", "1"), 1_000_000, 0)
		db.Append("live_frames_out", L("node", "0"), 1_000_000, 42)
		db.Append("live_frames_out", L("node", "0"), 2_000_000, 99.5)
		db.Append("nan_gauge", nil, 1_000_000, math.NaN())
		db.Append("inf_gauge", nil, 1_000_000, math.Inf(1))
		db.Annotate(Annotation{At: 2_000_000, Kind: "silent-relay",
			Series: `live_frames_in_data{node="1"}`, Value: 0, Detail: "no inbound frames"})
		return db
	}
	p1 := filepath.Join(t.TempDir(), "a.tsdb")
	p2 := filepath.Join(t.TempDir(), "b.tsdb")
	if err := build().WriteFile(p1); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteFile(p2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(p1)
	b2, _ := os.ReadFile(p2)
	if string(b1) != string(b2) {
		t.Fatalf("equal DBs encoded differently:\n%s\n--\n%s", b1, b2)
	}
	want := `{"tsdb":1,"cap":8}
{"at":1000000,"s":"inf_gauge","v":"+Inf"}
{"at":1000000,"s":"live_frames_out{node=\"0\"}","v":"42"}
{"at":2000000,"s":"live_frames_out{node=\"0\"}","v":"99.5"}
{"at":1000000,"s":"nan_gauge","v":"NaN"}
{"at":1000000,"s":"up{node=\"0\"}","v":"1"}
{"at":1000000,"s":"up{node=\"1\"}","v":"0"}
{"at":2000000,"kind":"silent-relay","series":"live_frames_in_data{node=\"1\"}","v":"0","detail":"no inbound frames"}
`
	if string(b1) != want {
		t.Fatalf("golden mismatch:\ngot:\n%s\nwant:\n%s", b1, want)
	}
}

// TestFileRoundTrip checks write → read → write produces identical
// bytes, for both plain and gzip paths, including NaN/Inf values and
// annotations.
func TestFileRoundTrip(t *testing.T) {
	for _, name := range []string{"run.tsdb", "run.tsdb.gz"} {
		db := New(16)
		for i := 0; i < 20; i++ { // overflow the ring on one series
			db.Append("ctr", L("node", "0"), int64(i)*1e6, float64(i))
		}
		db.Append("g", nil, 5e6, math.Inf(-1))
		db.Annotate(Annotation{At: 7e6, Kind: "repair-spike", Value: 0.5, Detail: "paths died"})

		p := filepath.Join(t.TempDir(), name)
		if err := db.WriteFile(p); err != nil {
			t.Fatal(err)
		}
		got, err := ReadFile(p)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Capacity() != db.Capacity() || got.NumSeries() != db.NumSeries() {
			t.Fatalf("%s: cap/series mismatch", name)
		}
		if !reflect.DeepEqual(got.Get("ctr", L("node", "0")).Points(), db.Get("ctr", L("node", "0")).Points()) {
			t.Fatalf("%s: points differ after round trip", name)
		}
		if !reflect.DeepEqual(got.Annotations(), db.Annotations()) {
			t.Fatalf("%s: annotations differ after round trip", name)
		}
		// -Inf must survive the string encoding.
		if v, _ := got.Get("g", nil).Latest(); !math.IsInf(v.V, -1) {
			t.Fatalf("%s: -Inf became %v", name, v.V)
		}
		// Second generation must be byte-identical to the first.
		p2 := filepath.Join(t.TempDir(), name)
		if err := got.WriteFile(p2); err != nil {
			t.Fatal(err)
		}
		b1, _ := os.ReadFile(p)
		b2, _ := os.ReadFile(p2)
		if name == "run.tsdb" && string(b1) != string(b2) {
			t.Fatalf("%s: second generation differs", name)
		}
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing header":   `{"at":1,"s":"x","v":"1"}`,
		"bad version":      `{"tsdb":99,"cap":4}`,
		"duplicate header": "{\"tsdb\":1,\"cap\":4}\n{\"tsdb\":1,\"cap\":4}",
		"bad value":        "{\"tsdb\":1,\"cap\":4}\n{\"at\":1,\"s\":\"x\",\"v\":\"zzz\"}",
		"unknown record":   "{\"tsdb\":1,\"cap\":4}\n{\"at\":1}",
		"empty":            "",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Read succeeded, want error", name)
		}
	}
}

// TestStreamedWriterMatchesDump: the recorder's streaming append path
// and the one-shot DB dump must load back to the same retained state.
func TestStreamedWriterMatchesDump(t *testing.T) {
	dir := t.TempDir()
	streamed := filepath.Join(dir, "stream.tsdb")
	w, err := Create(streamed, 8)
	if err != nil {
		t.Fatal(err)
	}
	db := New(8)
	for i := 0; i < 12; i++ {
		at, v := int64(i)*1e6, float64(i*i)
		db.Append("c", L("node", "0"), at, v)
		w.Sample(at, Key("c", L("node", "0")), v)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	fromStream, err := ReadFile(streamed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromStream.Get("c", L("node", "0")).Points(), db.Get("c", L("node", "0")).Points()) {
		t.Fatal("streamed file loads to different retained points than the in-memory DB")
	}
}

func TestSampleSnapshot(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("live.frames_out").Add(7)
	reg.Gauge("live.forward_states").Set(3)
	reg.Histogram("lat.ms", []float64{1, 10}).Observe(5)

	db := New(8)
	SampleSnapshot(db, nil, 1e6, L("node", "2"), reg.Snapshot())
	if s := db.Get("live_frames_out", L("node", "2")); s == nil {
		t.Fatal("counter not sampled under sanitized name")
	} else if p, _ := s.Latest(); p.V != 7 {
		t.Fatalf("counter = %v, want 7", p.V)
	}
	if s := db.Get("lat_ms_count", L("node", "2")); s == nil {
		t.Fatal("histogram count not sampled")
	}
	if s := db.Get("lat_ms_sum", L("node", "2")); s == nil {
		t.Fatal("histogram sum not sampled")
	}
}

// TestConcurrentAppendQuery exercises the locking under the race
// detector: appenders, readers and annotators in parallel.
func TestConcurrentAppendQuery(t *testing.T) {
	db := New(32)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.Append("c", L("node", "0"), int64(i), float64(i))
				db.Append("g", nil, int64(i), float64(g))
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				db.All()
				if s := db.Get("c", L("node", "0")); s != nil {
					s.Points()
					s.CounterDelta(0)
					s.WindowQuantile(0.9, 0)
				}
				db.Annotate(Annotation{At: int64(i), Kind: "k"})
				db.Bounds()
			}
		}()
	}
	wg.Wait()
	if s := db.Get("c", L("node", "0")); s.Total() != 800 {
		t.Fatalf("Total = %d, want 800", s.Total())
	}
}
