package onion

import (
	"errors"
	"fmt"
	"io"

	"resilientmix/internal/netsim"
	"resilientmix/internal/onioncrypt"
	"resilientmix/internal/wire"
)

// ErrMalformedOnion is returned when a decrypted layer does not parse.
var ErrMalformedOnion = errors.New("onion: malformed layer")

// KeyLookup resolves a node's public key; *Directory implements it, and
// so does any other PKI source (e.g. a live-deployment roster).
type KeyLookup interface {
	Public(id netsim.NodeID) onioncrypt.PublicKey
}

// BuildConstructOnion produces the nested path-construction onion of
// §4.1 for the relays P_1..P_L with hop keys R_1..R_L and responder D:
//
//	Path_i = < P_{i+1}, R_i, Path_{i+1} >_{PubKey(P_i)},  Path_{L+1} = ⊥
//
// The layer for the terminal relay names the responder as its next hop
// and carries the ⊥ marker so the relay knows the path ends with it.
func BuildConstructOnion(suite onioncrypt.Suite, r io.Reader, dir KeyLookup, relays []netsim.NodeID, responder netsim.NodeID, keys [][]byte) ([]byte, error) {
	if len(relays) == 0 {
		return nil, fmt.Errorf("onion: a path needs at least one relay")
	}
	if len(keys) != len(relays) {
		return nil, fmt.Errorf("onion: %d keys for %d relays", len(keys), len(relays))
	}
	inner := []byte(nil) // ⊥
	for i := len(relays) - 1; i >= 0; i-- {
		w := wire.NewWriter()
		next := responder
		if i < len(relays)-1 {
			next = relays[i+1]
		}
		w.Int32(int32(next))
		w.Bool(i == len(relays)-1)
		w.Bytes32(keys[i])
		w.Bytes32(inner)
		sealed, err := suite.Seal(r, dir.Public(relays[i]), w.Bytes())
		if err != nil {
			return nil, fmt.Errorf("onion: sealing layer %d: %w", i, err)
		}
		inner = sealed
	}
	return inner, nil
}

// ConstructLayer is one decrypted layer of a construction onion: the
// next hop, the terminal marker (next hop is the responder and the
// inner onion is ⊥), the hop's symmetric key and the inner onion.
type ConstructLayer struct {
	Next     netsim.NodeID
	Terminal bool
	Key      []byte
	Inner    []byte
}

// ParseConstructLayer strips one layer with the relay's private key.
func ParseConstructLayer(suite onioncrypt.Suite, priv onioncrypt.PrivateKey, onion []byte) (ConstructLayer, error) {
	pt, err := suite.Open(priv, onion)
	if err != nil {
		return ConstructLayer{}, err
	}
	rd := wire.NewReader(pt)
	layer := ConstructLayer{
		Next:     netsim.NodeID(rd.Int32()),
		Terminal: rd.Bool(),
	}
	layer.Key = append([]byte(nil), rd.Bytes32()...)
	layer.Inner = append([]byte(nil), rd.Bytes32()...)
	if err := rd.Done(); err != nil {
		return ConstructLayer{}, fmt.Errorf("%w: %v", ErrMalformedOnion, err)
	}
	if layer.Terminal != (len(layer.Inner) == 0) {
		return ConstructLayer{}, fmt.Errorf("%w: terminal marker disagrees with ⊥", ErrMalformedOnion)
	}
	return layer, nil
}

// BuildPayloadOnion produces the payload onion of §4.2 (with the §4.4
// last-hop destination field):
//
//	PayLoad_{L+1} = < plain >_{respKey}, < respKey >_{PubKey(D)}
//	PayLoad_L     = < D, PayLoad_{L+1} >_{R_L}
//	PayLoad_i     = < PayLoad_{i+1} >_{R_i}          1 <= i < L
//
// sealedRespKey is < respKey >_{PubKey(D)}, computed once per path by
// the initiator and reused for every message on it.
func BuildPayloadOnion(suite onioncrypt.Suite, r io.Reader, keys [][]byte, responder netsim.NodeID, respKey, sealedRespKey, plain []byte) ([]byte, error) {
	if len(keys) == 0 {
		return nil, fmt.Errorf("onion: a payload onion needs at least one relay key")
	}
	ct, err := suite.SymSeal(r, respKey, plain)
	if err != nil {
		return nil, fmt.Errorf("onion: sealing responder payload: %w", err)
	}
	w := wire.NewWriter()
	w.Bytes32(sealedRespKey)
	w.Bytes32(ct)
	blob := w.Bytes()

	// Terminal relay layer carries the destination override field.
	lw := wire.NewWriter()
	lw.Int32(int32(responder))
	lw.Bytes32(blob)
	body, err := suite.SymSeal(r, keys[len(keys)-1], lw.Bytes())
	if err != nil {
		return nil, fmt.Errorf("onion: sealing terminal layer: %w", err)
	}
	for i := len(keys) - 2; i >= 0; i-- {
		body, err = suite.SymSeal(r, keys[i], body)
		if err != nil {
			return nil, fmt.Errorf("onion: sealing layer %d: %w", i, err)
		}
	}
	return body, nil
}

// ParseTerminalPayload splits the decrypted terminal-relay layer into
// the destination and the responder blob.
func ParseTerminalPayload(pt []byte) (netsim.NodeID, []byte, error) {
	rd := wire.NewReader(pt)
	dest := netsim.NodeID(rd.Int32())
	blob := rd.Bytes32()
	if err := rd.Done(); err != nil {
		return netsim.Invalid, nil, fmt.Errorf("%w: %v", ErrMalformedOnion, err)
	}
	return dest, blob, nil
}

// ParseResponderBlob splits the responder blob into the sealed key and
// the symmetric ciphertext.
func ParseResponderBlob(blob []byte) (sealedKey, ct []byte, err error) {
	rd := wire.NewReader(blob)
	sealedKey = rd.Bytes32()
	ct = rd.Bytes32()
	if err := rd.Done(); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrMalformedOnion, err)
	}
	return sealedKey, ct, nil
}

// PayloadOnionSize predicts the on-the-wire size of the outermost
// payload-onion layer for a path of length L carrying plain bytes of the
// given length — used by the analytic bandwidth model.
func PayloadOnionSize(suite onioncrypt.Suite, pathLen, plainLen int) int {
	// responder blob: 4 + sealedKey(SymKeySize + SealOverhead) + 4 + ct.
	blob := 4 + onioncrypt.SymKeySize + suite.SealOverhead() + 4 + plainLen + suite.SymOverhead()
	// terminal layer plaintext: 4 (dest) + 4 + blob.
	body := 4 + 4 + blob + suite.SymOverhead()
	// remaining L-1 plain symmetric layers.
	return body + (pathLen-1)*suite.SymOverhead()
}
