package onion

import (
	"fmt"
	"io"

	"resilientmix/internal/netsim"
	"resilientmix/internal/onioncrypt"
)

// Directory is the PKI: every node's key pair, with public keys visible
// to everyone. The paper assumes "each node learns other nodes' public
// keys through some mechanism (e.g., out-of-band or piggybacking in
// messages)" (§4); the directory models that mechanism.
type Directory struct {
	suite onioncrypt.Suite
	keys  []onioncrypt.KeyPair
}

// NewDirectory generates key pairs for n nodes using the suite and the
// random source.
func NewDirectory(suite onioncrypt.Suite, r io.Reader, n int) (*Directory, error) {
	if n <= 0 {
		return nil, fmt.Errorf("onion: directory size must be positive, got %d", n)
	}
	d := &Directory{suite: suite, keys: make([]onioncrypt.KeyPair, n)}
	for i := range d.keys {
		kp, err := suite.GenerateKeyPair(r)
		if err != nil {
			return nil, fmt.Errorf("onion: generating key for node %d: %w", i, err)
		}
		d.keys[i] = kp
	}
	return d, nil
}

// Suite returns the directory's cryptography suite.
func (d *Directory) Suite() onioncrypt.Suite { return d.suite }

// Size returns the number of nodes.
func (d *Directory) Size() int { return len(d.keys) }

// Public returns a node's public key.
func (d *Directory) Public(id netsim.NodeID) onioncrypt.PublicKey {
	return d.keys[id].Public
}

// Private returns a node's private key. In the real system only the node
// itself holds this; the simulator hands it to that node's Relay and
// Responder.
func (d *Directory) Private(id netsim.NodeID) onioncrypt.PrivateKey {
	return d.keys[id].Private
}
