package onion

import (
	"testing"

	"resilientmix/internal/netsim"
	"resilientmix/internal/onioncrypt"
	"resilientmix/internal/sim"
	"resilientmix/internal/topology"
)

func TestRelayDropsUnknownStreams(t *testing.T) {
	e := newEnv(t, 4, onioncrypt.Null{}, 31)
	// Messages referencing streams no relay knows must be dropped and
	// counted, not crash.
	e.net.Send(0, 1, netsim.Message{Payload: DataMsg{SID: 42, Body: []byte("x")}, Size: 10})
	e.net.Send(0, 1, netsim.Message{Payload: ReverseMsg{SID: 43, Body: []byte("x")}, Size: 10})
	e.net.Send(0, 1, netsim.Message{Payload: ConstructAck{SID: 44}, Size: 9})
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	st := e.nodes[1].Relay.Stats()
	if st.DroppedNoSID < 2 {
		t.Fatalf("unknown streams not counted: %+v", st)
	}
}

func TestRelayDropsGarbageOnion(t *testing.T) {
	e := newEnv(t, 4, onioncrypt.Null{}, 32)
	e.net.Send(0, 1, netsim.Message{Payload: ConstructMsg{SID: 1, Onion: []byte("garbage")}, Size: 20})
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	if e.nodes[1].Relay.Stats().DroppedBad != 1 {
		t.Fatal("garbage onion not counted as bad")
	}
}

func TestRelayDropsCorruptedData(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 33)
	p, ok := construct(t, e, 0, []netsim.NodeID{2, 3, 4}, 7)
	if !ok {
		t.Fatal("construction failed")
	}
	// Send a data message with the right SID but a corrupt body.
	e.net.Send(0, 2, netsim.Message{Payload: DataMsg{SID: p.SID, Body: []byte("not a layer")}, Size: 20})
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	if e.nodes[2].Relay.Stats().DroppedBad == 0 {
		t.Fatal("corrupt payload not counted")
	}
	if len(e.received) != 0 {
		t.Fatal("corrupt payload was delivered")
	}
}

func TestDeliverToNonResponderDropped(t *testing.T) {
	// A node with no responder role must drop DeliverMsg silently.
	eng := sim.NewEngine(34)
	lat, _ := topology.Uniform(4, 50*sim.Millisecond)
	net := netsim.New(eng, lat)
	dir, _ := NewDirectory(onioncrypt.Null{}, eng.RNG(), 4)
	mux := netsim.NewMux()
	NewNode(net, 1, dir, mux, NodeConfig{}) // no OnData
	net.SetHandler(1, mux)
	net.Send(0, 1, netsim.Message{Payload: DeliverMsg{SID: 1, Body: []byte("x")}, Size: 10})
	eng.Run(10 * sim.Second) // must not panic
}

func TestResponderDropsGarbageDeliveries(t *testing.T) {
	e := newEnv(t, 4, onioncrypt.Null{}, 35)
	e.net.Send(0, 1, netsim.Message{Payload: DeliverMsg{SID: 9, Body: []byte("junk")}, Size: 10})
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	if e.nodes[1].Responder.Dropped() != 1 {
		t.Fatal("garbage delivery not counted")
	}
	if len(e.received) != 0 {
		t.Fatal("garbage delivery reached the application")
	}
}

func TestResponderStreamSweep(t *testing.T) {
	// Responder streams expire like relay state.
	eng := sim.NewEngine(36)
	lat, _ := topology.Uniform(8, 50*sim.Millisecond)
	net := netsim.New(eng, lat)
	dir, _ := NewDirectory(onioncrypt.Null{}, eng.RNG(), 8)
	var nodes []*Node
	for i := 0; i < 8; i++ {
		mux := netsim.NewMux()
		nodes = append(nodes, NewNode(net, netsim.NodeID(i), dir, mux, NodeConfig{
			StateTTL: 30 * sim.Second,
			OnData:   func(ReplyHandle, []byte) {},
		}))
		net.SetHandler(netsim.NodeID(i), mux)
	}
	var established bool
	p, err := nodes[0].Initiator.Construct([]netsim.NodeID{2, 3}, 7, nil, func(_ *Path, ok bool) { established = ok })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(10 * sim.Second)
	if !established {
		t.Fatal("construction failed")
	}
	if err := nodes[0].Initiator.SendData(p, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	eng.Run(eng.Now() + 5*sim.Second)
	if len(nodes[7].Responder.streams) != 1 {
		t.Fatalf("responder streams = %d, want 1", len(nodes[7].Responder.streams))
	}
	eng.Run(eng.Now() + 2*sim.Minute)
	if len(nodes[7].Responder.streams) != 0 {
		t.Fatal("responder stream not swept after TTL")
	}
}

func TestInitiatorIgnoresForeignReverse(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 37)
	p, ok := construct(t, e, 0, []netsim.NodeID{2, 3, 4}, 7)
	if !ok {
		t.Fatal("construction failed")
	}
	// A reverse message with the right SID but undecryptable body must
	// be ignored (corrupted or replayed).
	e.net.Send(5, 0, netsim.Message{Payload: ReverseMsg{SID: p.SID, Body: []byte("bogus")}, Size: 10})
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	if len(e.replies) != 0 {
		t.Fatal("bogus reverse payload surfaced to the application")
	}
}

func TestSendDataToUnknownTargetKeyGeneration(t *testing.T) {
	// SendDataTo generates and caches per-responder keys lazily; sending
	// twice to the same new responder must reuse the cached target.
	e := newEnv(t, 10, onioncrypt.Null{}, 38)
	p, ok := construct(t, e, 0, []netsim.NodeID{2, 3}, 7)
	if !ok {
		t.Fatal("construction failed")
	}
	if err := e.nodes[0].Initiator.SendDataTo(p, 9, []byte("a"), nil); err != nil {
		t.Fatal(err)
	}
	if err := e.nodes[0].Initiator.SendDataTo(p, 9, []byte("b"), nil); err != nil {
		t.Fatal(err)
	}
	if len(p.targets) != 2 { // responder 7 (from construct) + 9
		t.Fatalf("targets = %d, want 2", len(p.targets))
	}
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	if len(e.received) != 2 {
		t.Fatalf("received = %d", len(e.received))
	}
}
