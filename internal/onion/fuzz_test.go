package onion

import (
	"testing"

	"resilientmix/internal/netsim"
	"resilientmix/internal/onioncrypt"
	"resilientmix/internal/sim"
)

// FuzzParseConstructLayer feeds arbitrary ciphertext to the relay-side
// onion parser: garbage must fail cleanly, never panic or produce a
// layer that violates its invariants.
func FuzzParseConstructLayer(f *testing.F) {
	suite := onioncrypt.Null{}
	eng := sim.NewEngine(1)
	dir, err := NewDirectory(suite, eng.RNG(), 4)
	if err != nil {
		f.Fatal(err)
	}
	keys := [][]byte{make([]byte, onioncrypt.SymKeySize)}
	good, err := BuildConstructOnion(suite, eng.RNG(), dir, []netsim.NodeID{0}, 3, keys)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(make([]byte, 64))

	priv := dir.Private(0)
	f.Fuzz(func(t *testing.T, data []byte) {
		layer, err := ParseConstructLayer(suite, priv, data)
		if err != nil {
			return
		}
		// Accepted layers must be internally consistent.
		if layer.Terminal != (len(layer.Inner) == 0) {
			t.Fatal("accepted layer violates the terminal/⊥ invariant")
		}
	})
}

// FuzzResponderBlob exercises the delivery-side parsers the responder
// runs on network input.
func FuzzResponderBlob(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 16))
	f.Fuzz(func(t *testing.T, data []byte) {
		if sealed, ct, err := ParseResponderBlob(data); err == nil {
			if len(sealed)+len(ct) > len(data) {
				t.Fatal("parsed parts exceed input")
			}
		}
		if _, blob, err := ParseTerminalPayload(data); err == nil {
			if len(blob) > len(data) {
				t.Fatal("parsed blob exceeds input")
			}
		}
	})
}
