package onion

import (
	"fmt"
	"math/rand"

	"resilientmix/internal/metrics"
	"resilientmix/internal/netsim"
	"resilientmix/internal/obs"
	"resilientmix/internal/onioncrypt"
	"resilientmix/internal/sim"
)

// DefaultConstructTimeout bounds how long the initiator waits for a
// construction acknowledgment before declaring the attempt failed
// (§4.5 "timeout and retry mechanisms").
const DefaultConstructTimeout = 5 * sim.Second

// PathState tracks a path's lifecycle at the initiator.
type PathState int

// Path lifecycle states.
const (
	PathConstructing PathState = iota
	PathEstablished
	PathFailed
)

// String names the state.
func (s PathState) String() string {
	switch s {
	case PathConstructing:
		return "constructing"
	case PathEstablished:
		return "established"
	case PathFailed:
		return "failed"
	default:
		return fmt.Sprintf("PathState(%d)", int(s))
	}
}

// target holds the per-responder keys of a path (a reused path can
// multiplex several responders, §4.4).
type target struct {
	key    []byte
	sealed []byte
}

// Path is the initiator's record of one anonymous forwarding path.
type Path struct {
	// SID is the stream ID on the initiator→first-relay link.
	SID StreamID
	// Relays are P_1..P_L in forwarding order.
	Relays []netsim.NodeID
	// Responder is the path's current default destination.
	Responder netsim.NodeID
	// State is the lifecycle state.
	State PathState
	// EstablishedAt is when the construction ack arrived.
	EstablishedAt sim.Time

	keys    [][]byte // R_1..R_L
	targets map[netsim.NodeID]*target

	onResult func(*Path, bool) // construction outcome callback
	timer    *sim.Timer
}

// ReverseFunc receives a decrypted reverse-path payload at the
// initiator: the path it arrived on, the responder that sent it, and the
// plaintext.
type ReverseFunc func(p *Path, from netsim.NodeID, plain []byte, flow *metrics.Flow)

// Initiator is the sender-side endpoint: it constructs paths (§4.1),
// sends payload onions (§4.2), reuses paths for new responders (§4.4)
// and surfaces reverse-path traffic.
type Initiator struct {
	id      netsim.NodeID
	net     *netsim.Network
	eng     *sim.Engine
	rng     *rand.Rand
	suite   onioncrypt.Suite
	dir     *Directory
	timeout sim.Time

	paths     map[StreamID]*Path
	onReverse ReverseFunc
}

// NewInitiator creates the initiator endpoint for a node. timeout <= 0
// selects DefaultConstructTimeout.
func NewInitiator(net *netsim.Network, id netsim.NodeID, dir *Directory, timeout sim.Time, onReverse ReverseFunc) *Initiator {
	if timeout <= 0 {
		timeout = DefaultConstructTimeout
	}
	return &Initiator{
		id:        id,
		net:       net,
		eng:       net.Engine(),
		rng:       net.Engine().RNG(),
		suite:     dir.Suite(),
		dir:       dir,
		timeout:   timeout,
		paths:     make(map[StreamID]*Path),
		onReverse: onReverse,
	}
}

// Owns reports whether sid belongs to one of this initiator's paths.
func (in *Initiator) Owns(sid StreamID) bool {
	_, ok := in.paths[sid]
	return ok
}

// Paths returns the number of tracked paths.
func (in *Initiator) Paths() int { return len(in.paths) }

// Forget drops a path's local record (e.g. after it failed and was
// replaced).
func (in *Initiator) Forget(p *Path) { delete(in.paths, p.SID) }

// Construct builds and launches a path through the given relays to the
// responder. The done callback fires exactly once: with true when the
// construction ack arrives, with false on timeout or on immediate
// failure (in which case Construct also returns the error).
func (in *Initiator) Construct(relays []netsim.NodeID, responder netsim.NodeID, flow *metrics.Flow, done func(*Path, bool)) (*Path, error) {
	if len(relays) == 0 {
		return nil, fmt.Errorf("onion: path needs at least one relay")
	}
	for _, rid := range relays {
		if rid == in.id || rid == responder {
			return nil, fmt.Errorf("onion: relay %d collides with an endpoint", rid)
		}
	}
	keys := make([][]byte, len(relays))
	for i := range keys {
		k, err := in.suite.NewSymKey(in.rng)
		if err != nil {
			return nil, fmt.Errorf("onion: generating hop key: %w", err)
		}
		keys[i] = k
	}
	p := &Path{
		SID:       StreamID(in.rng.Uint64()),
		Relays:    append([]netsim.NodeID(nil), relays...),
		Responder: responder,
		State:     PathConstructing,
		keys:      keys,
		targets:   make(map[netsim.NodeID]*target),
		onResult:  done,
	}
	if _, err := in.ensureTarget(p, responder); err != nil {
		return nil, err
	}
	onionBytes, err := BuildConstructOnion(in.suite, in.rng, in.dir, relays, responder, keys)
	if err != nil {
		return nil, err
	}
	in.paths[p.SID] = p
	msg := ConstructMsg{SID: p.SID, Onion: onionBytes, Flow: flow}
	send(in.net, in.id, relays[0], msg, msg.WireSize(), flow, obs.Tag{})
	p.timer = in.eng.After(in.timeout, func() {
		if p.State == PathConstructing {
			p.State = PathFailed
			in.finish(p, false)
		}
	})
	return p, nil
}

// ConstructWithData builds a path AND sends the first payload in the
// same single pass (§4.2's combined mode): the first application message
// arrives at the responder one half-RTT after launch instead of waiting
// a full construction round trip. The done callback still reports the
// construction outcome when the ack returns.
func (in *Initiator) ConstructWithData(relays []netsim.NodeID, responder netsim.NodeID, plain []byte, flow *metrics.Flow, done func(*Path, bool)) (*Path, error) {
	return in.ConstructWithDataTagged(relays, responder, plain, flow, obs.Tag{}, done)
}

// ConstructWithDataTagged is ConstructWithData with a data-plane trace
// tag stamped on the piggybacked payload's wire journey.
func (in *Initiator) ConstructWithDataTagged(relays []netsim.NodeID, responder netsim.NodeID, plain []byte, flow *metrics.Flow, tag obs.Tag, done func(*Path, bool)) (*Path, error) {
	if len(relays) == 0 {
		return nil, fmt.Errorf("onion: path needs at least one relay")
	}
	for _, rid := range relays {
		if rid == in.id || rid == responder {
			return nil, fmt.Errorf("onion: relay %d collides with an endpoint", rid)
		}
	}
	keys := make([][]byte, len(relays))
	for i := range keys {
		k, err := in.suite.NewSymKey(in.rng)
		if err != nil {
			return nil, fmt.Errorf("onion: generating hop key: %w", err)
		}
		keys[i] = k
	}
	p := &Path{
		SID:       StreamID(in.rng.Uint64()),
		Relays:    append([]netsim.NodeID(nil), relays...),
		Responder: responder,
		State:     PathConstructing,
		keys:      keys,
		targets:   make(map[netsim.NodeID]*target),
		onResult:  done,
	}
	t, err := in.ensureTarget(p, responder)
	if err != nil {
		return nil, err
	}
	onionBytes, err := BuildConstructOnion(in.suite, in.rng, in.dir, relays, responder, keys)
	if err != nil {
		return nil, err
	}
	body, err := BuildPayloadOnion(in.suite, in.rng, keys, responder, t.key, t.sealed, plain)
	if err != nil {
		return nil, err
	}
	in.paths[p.SID] = p
	msg := ConstructDataMsg{SID: p.SID, Onion: onionBytes, Body: body, Flow: flow, Trace: tag}
	send(in.net, in.id, relays[0], msg, msg.WireSize(), flow, tag)
	p.timer = in.eng.After(in.timeout, func() {
		if p.State == PathConstructing {
			p.State = PathFailed
			in.finish(p, false)
		}
	})
	return p, nil
}

func (in *Initiator) finish(p *Path, ok bool) {
	if cb := p.onResult; cb != nil {
		p.onResult = nil
		cb(p, ok)
	}
}

// ensureTarget returns the per-responder keys of a path, creating and
// sealing them on first use.
func (in *Initiator) ensureTarget(p *Path, responder netsim.NodeID) (*target, error) {
	if t, ok := p.targets[responder]; ok {
		return t, nil
	}
	key, err := in.suite.NewSymKey(in.rng)
	if err != nil {
		return nil, fmt.Errorf("onion: generating responder key: %w", err)
	}
	sealed, err := in.suite.Seal(in.rng, in.dir.Public(responder), key)
	if err != nil {
		return nil, fmt.Errorf("onion: sealing responder key: %w", err)
	}
	t := &target{key: key, sealed: sealed}
	p.targets[responder] = t
	return t, nil
}

// SendData sends an application payload to the path's default responder.
func (in *Initiator) SendData(p *Path, plain []byte, flow *metrics.Flow) error {
	return in.SendDataTo(p, p.Responder, plain, flow)
}

// SendDataTo sends an application payload over the path to an arbitrary
// responder, reusing the established path state (§4.4). The path must be
// established.
func (in *Initiator) SendDataTo(p *Path, responder netsim.NodeID, plain []byte, flow *metrics.Flow) error {
	return in.SendDataTagged(p, responder, plain, flow, obs.Tag{})
}

// SendDataTagged is SendDataTo with a data-plane trace tag stamped on
// the payload's wire journey, so offline analysis can follow it hop by
// hop.
func (in *Initiator) SendDataTagged(p *Path, responder netsim.NodeID, plain []byte, flow *metrics.Flow, tag obs.Tag) error {
	if p.State != PathEstablished {
		return fmt.Errorf("onion: path is %v, not established", p.State)
	}
	t, err := in.ensureTarget(p, responder)
	if err != nil {
		return err
	}
	body, err := BuildPayloadOnion(in.suite, in.rng, p.keys, responder, t.key, t.sealed, plain)
	if err != nil {
		return err
	}
	msg := DataMsg{SID: p.SID, Body: body, Flow: flow, Trace: tag}
	send(in.net, in.id, p.Relays[0], msg, msg.WireSize(), flow, tag)
	return nil
}

// handleConstructAck completes a pending construction.
func (in *Initiator) handleConstructAck(_ netsim.NodeID, msg ConstructAck) {
	p, ok := in.paths[msg.SID]
	if !ok || p.State != PathConstructing {
		return
	}
	p.State = PathEstablished
	p.EstablishedAt = in.eng.Now()
	p.timer.Cancel()
	in.finish(p, true)
}

// handleReverse peels all relay layers plus the responder layer and
// hands the plaintext to the application callback.
func (in *Initiator) handleReverse(_ netsim.NodeID, msg ReverseMsg) {
	p, ok := in.paths[msg.SID]
	if !ok {
		return
	}
	body := msg.Body
	for _, k := range p.keys {
		pt, err := in.suite.SymOpen(k, body)
		if err != nil {
			return // corrupted or replayed
		}
		body = pt
	}
	// Identify the sending responder by which target key decrypts.
	for dest, t := range p.targets {
		if pt, err := in.suite.SymOpen(t.key, body); err == nil {
			if in.onReverse != nil {
				in.onReverse(p, dest, pt, msg.Flow)
			}
			return
		}
	}
}
