package onion

import (
	"resilientmix/internal/netsim"
	"resilientmix/internal/sim"
)

// Node bundles the three roles a peer can play — relay for others'
// paths, initiator of its own, responder for traffic addressed to it —
// and dispatches the onion message types among them. Every peer in the
// paper's system is at least a relay; the other two roles are optional.
type Node struct {
	ID        netsim.NodeID
	Relay     *Relay
	Initiator *Initiator
	Responder *Responder
}

// NodeConfig configures NewNode.
type NodeConfig struct {
	// StateTTL is the relay/responder path-state TTL; zero selects
	// DefaultStateTTL.
	StateTTL sim.Time
	// ConstructTimeout is the initiator's construction-ack timeout; zero
	// selects DefaultConstructTimeout.
	ConstructTimeout sim.Time
	// OnReverse, if set, enables the initiator role.
	OnReverse ReverseFunc
	// OnData, if set, enables the responder role.
	OnData DataFunc
}

// NewNode creates a peer's onion roles and registers them on the mux.
func NewNode(net *netsim.Network, id netsim.NodeID, dir *Directory, mux *netsim.Mux, cfg NodeConfig) *Node {
	n := &Node{
		ID:    id,
		Relay: NewRelay(net, id, dir.Suite(), dir.Private(id), cfg.StateTTL),
	}
	n.Initiator = NewInitiator(net, id, dir, cfg.ConstructTimeout, cfg.OnReverse)
	if cfg.OnData != nil {
		n.Responder = NewResponder(net, id, dir.Suite(), dir.Private(id), cfg.StateTTL, cfg.OnData)
	}
	n.attach(mux)
	return n
}

func (n *Node) attach(mux *netsim.Mux) {
	mux.Route(ConstructMsg{}, netsim.HandlerFunc(func(from netsim.NodeID, m netsim.Message) {
		n.Relay.handleConstruct(from, m.Payload.(ConstructMsg))
	}))
	mux.Route(ConstructDataMsg{}, netsim.HandlerFunc(func(from netsim.NodeID, m netsim.Message) {
		n.Relay.handleConstructData(from, m.Payload.(ConstructDataMsg))
	}))
	mux.Route(ConstructAck{}, netsim.HandlerFunc(func(from netsim.NodeID, m netsim.Message) {
		ack := m.Payload.(ConstructAck)
		// The initiator's own streams take priority; otherwise this node
		// is an intermediate relay on someone else's path.
		if n.Initiator != nil && n.Initiator.Owns(ack.SID) {
			n.Initiator.handleConstructAck(from, ack)
			return
		}
		n.Relay.handleConstructAck(from, ack)
	}))
	mux.Route(DataMsg{}, netsim.HandlerFunc(func(from netsim.NodeID, m netsim.Message) {
		n.Relay.handleData(from, m.Payload.(DataMsg))
	}))
	mux.Route(DeliverMsg{}, netsim.HandlerFunc(func(from netsim.NodeID, m netsim.Message) {
		if n.Responder != nil {
			n.Responder.handleDeliver(from, m.Payload.(DeliverMsg))
		}
	}))
	mux.Route(ReverseMsg{}, netsim.HandlerFunc(func(from netsim.NodeID, m netsim.Message) {
		rev := m.Payload.(ReverseMsg)
		if n.Initiator != nil && n.Initiator.Owns(rev.SID) {
			n.Initiator.handleReverse(from, rev)
			return
		}
		n.Relay.handleReverse(from, rev)
	}))
}
