package onion

import (
	"bytes"
	"testing"

	"resilientmix/internal/metrics"
	"resilientmix/internal/netsim"
	"resilientmix/internal/onioncrypt"
	"resilientmix/internal/sim"
	"resilientmix/internal/topology"
)

// env is a small fully-wired onion network for tests.
type env struct {
	eng   *sim.Engine
	net   *netsim.Network
	dir   *Directory
	nodes []*Node

	// captured application events
	received  [][]byte // payloads seen by responders
	replies   [][]byte // reverse payloads seen by initiators
	replyFrom []netsim.NodeID
	// onDelivered, if set, observes each responder delivery time.
	onDelivered func(at sim.Time)
}

func newEnv(t *testing.T, n int, suite onioncrypt.Suite, seed int64) *env {
	t.Helper()
	eng := sim.NewEngine(seed)
	lat, err := topology.Uniform(n, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	net := netsim.New(eng, lat)
	dir, err := NewDirectory(suite, eng.RNG(), n)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{eng: eng, net: net, dir: dir}
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		mux := netsim.NewMux()
		node := NewNode(net, id, dir, mux, NodeConfig{
			OnReverse: func(p *Path, from netsim.NodeID, plain []byte, flow *metrics.Flow) {
				e.replies = append(e.replies, append([]byte(nil), plain...))
				e.replyFrom = append(e.replyFrom, from)
			},
			OnData: func(h ReplyHandle, plain []byte) {
				e.received = append(e.received, append([]byte(nil), plain...))
				if e.onDelivered != nil {
					e.onDelivered(eng.Now())
				}
				// Echo back a reply so reverse routing is exercised.
				h.Reply(append([]byte("echo:"), plain...), h.Flow)
			},
		})
		e.nodes = append(e.nodes, node)
		net.SetHandler(id, mux)
	}
	return e
}

func construct(t *testing.T, e *env, init int, relays []netsim.NodeID, responder netsim.NodeID) (*Path, bool) {
	t.Helper()
	var ok bool
	var done bool
	p, err := e.nodes[init].Initiator.Construct(relays, responder, nil, func(_ *Path, success bool) {
		ok = success
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	e.eng.Run(e.eng.Now() + 30*sim.Second)
	if !done {
		t.Fatal("construction callback never fired")
	}
	return p, ok
}

func TestConstructAndSendBothSuites(t *testing.T) {
	for _, suite := range []onioncrypt.Suite{onioncrypt.ECIES{}, onioncrypt.Null{}} {
		t.Run(suite.Name(), func(t *testing.T) {
			e := newEnv(t, 8, suite, 1)
			relays := []netsim.NodeID{2, 3, 4}
			p, ok := construct(t, e, 0, relays, 7)
			if !ok {
				t.Fatal("construction failed on a healthy network")
			}
			if p.State != PathEstablished {
				t.Fatalf("path state = %v", p.State)
			}
			msg := []byte("anonymous hello")
			if err := e.nodes[0].Initiator.SendData(p, msg, nil); err != nil {
				t.Fatal(err)
			}
			e.eng.Run(e.eng.Now() + 10*sim.Second)
			if len(e.received) != 1 || !bytes.Equal(e.received[0], msg) {
				t.Fatalf("responder received %q", e.received)
			}
			// The echo reply must come back through the reverse path.
			if len(e.replies) != 1 || !bytes.Equal(e.replies[0], append([]byte("echo:"), msg...)) {
				t.Fatalf("initiator replies = %q", e.replies)
			}
			if e.replyFrom[0] != 7 {
				t.Fatalf("reply attributed to %d, want 7", e.replyFrom[0])
			}
		})
	}
}

func TestSingleRelayPath(t *testing.T) {
	e := newEnv(t, 4, onioncrypt.Null{}, 2)
	p, ok := construct(t, e, 0, []netsim.NodeID{2}, 3)
	if !ok {
		t.Fatal("L=1 construction failed")
	}
	if err := e.nodes[0].Initiator.SendData(p, []byte("short"), nil); err != nil {
		t.Fatal(err)
	}
	e.eng.Run(e.eng.Now() + 5*sim.Second)
	if len(e.received) != 1 {
		t.Fatal("L=1 delivery failed")
	}
}

func TestConstructionFailsWhenRelayDown(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 3)
	e.net.SetUp(3, false)
	_, ok := construct(t, e, 0, []netsim.NodeID{2, 3, 4}, 7)
	if ok {
		t.Fatal("construction succeeded through a dead relay")
	}
}

func TestConstructionTimeoutMarksFailed(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 4)
	e.net.SetUp(4, false)
	var result *Path
	p, err := e.nodes[0].Initiator.Construct([]netsim.NodeID{2, 3, 4}, 7, nil, func(pp *Path, ok bool) {
		if ok {
			t.Error("unexpected success")
		}
		result = pp
	})
	if err != nil {
		t.Fatal(err)
	}
	e.eng.Run(DefaultConstructTimeout + sim.Second)
	if result == nil {
		t.Fatal("timeout callback never fired")
	}
	if p.State != PathFailed {
		t.Fatalf("state = %v, want failed", p.State)
	}
}

func TestRelayFailureBreaksEstablishedPath(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 5)
	p, ok := construct(t, e, 0, []netsim.NodeID{2, 3, 4}, 7)
	if !ok {
		t.Fatal("construction failed")
	}
	// Middle relay dies (and loses its path state, §4.3).
	e.net.SetUp(3, false)
	e.net.SetUp(3, true) // rejoins immediately, but state is gone
	if err := e.nodes[0].Initiator.SendData(p, []byte("lost"), nil); err != nil {
		t.Fatal(err)
	}
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	if len(e.received) != 0 {
		t.Fatal("message delivered through a relay that lost its state")
	}
}

func TestEndpointCollisionRejected(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 6)
	if _, err := e.nodes[0].Initiator.Construct([]netsim.NodeID{0, 2, 3}, 7, nil, nil); err == nil {
		t.Fatal("initiator as relay accepted")
	}
	if _, err := e.nodes[0].Initiator.Construct([]netsim.NodeID{7, 2, 3}, 7, nil, nil); err == nil {
		t.Fatal("responder as relay accepted")
	}
	if _, err := e.nodes[0].Initiator.Construct(nil, 7, nil, nil); err == nil {
		t.Fatal("empty relay list accepted")
	}
}

func TestSendOnUnestablishedPath(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 7)
	e.net.SetUp(3, false)
	p, _ := e.nodes[0].Initiator.Construct([]netsim.NodeID{2, 3, 4}, 7, nil, func(*Path, bool) {})
	if err := e.nodes[0].Initiator.SendData(p, []byte("x"), nil); err == nil {
		t.Fatal("SendData on a constructing path accepted")
	}
}

func TestPathReuseNewResponder(t *testing.T) {
	// §4.4: multiplex a second responder over an established path.
	e := newEnv(t, 10, onioncrypt.Null{}, 8)
	p, ok := construct(t, e, 0, []netsim.NodeID{2, 3, 4}, 7)
	if !ok {
		t.Fatal("construction failed")
	}
	if err := e.nodes[0].Initiator.SendDataTo(p, 9, []byte("to-nine"), nil); err != nil {
		t.Fatal(err)
	}
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	if len(e.received) != 1 || !bytes.Equal(e.received[0], []byte("to-nine")) {
		t.Fatalf("reused path delivery failed: %q", e.received)
	}
	// The echo reply from the new responder must reach the initiator and
	// be attributed to node 9.
	if len(e.replies) != 1 || e.replyFrom[0] != 9 {
		t.Fatalf("reply from reused path: %v from %v", e.replies, e.replyFrom)
	}
	// And the original responder must still be reachable afterwards.
	if err := e.nodes[0].Initiator.SendData(p, []byte("back-to-seven"), nil); err != nil {
		t.Fatal(err)
	}
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	if len(e.received) != 2 {
		t.Fatal("original responder unreachable after reuse")
	}
}

func TestBandwidthAccounting(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 9)
	relays := []netsim.NodeID{2, 3, 4}
	var cflow metrics.Flow
	var done bool
	_, err := e.nodes[0].Initiator.Construct(relays, 7, &cflow, func(p *Path, ok bool) {
		done = ok
	})
	if err != nil {
		t.Fatal(err)
	}
	e.eng.Run(30 * sim.Second)
	if !done {
		t.Fatal("construction failed")
	}
	// Construction: 3 onion hops + 3 ack hops (terminal relay acks to
	// its predecessor, which chains back to the initiator).
	if cflow.Messages != 6 {
		t.Fatalf("construct flow messages = %d, want 6", cflow.Messages)
	}
	if cflow.Bytes <= 0 {
		t.Fatal("construct flow bytes not accounted")
	}
}

func TestPayloadBandwidthMatchesModel(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 10)
	relays := []netsim.NodeID{2, 3, 4}
	p, ok := construct(t, e, 0, relays, 7)
	if !ok {
		t.Fatal("construction failed")
	}
	var flow metrics.Flow
	plain := make([]byte, 1024)
	if err := e.nodes[0].Initiator.SendData(p, plain, &flow); err != nil {
		t.Fatal(err)
	}
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	// Forward: 4 links (I->2->3->4->7); the echo reply adds reverse
	// links. Check the forward sizes against the analytic model: the
	// outermost onion layer size plus framing.
	outer := PayloadOnionSize(onioncrypt.Null{}, len(relays), 1024)
	wantFirstLink := msgHeaderSize + 4 + outer
	if flow.Messages < 4 {
		t.Fatalf("flow messages = %d, want at least the 4 forward links", flow.Messages)
	}
	// First link must be the largest forward message; the onion shrinks
	// by one symmetric overhead per hop.
	if flow.Bytes < wantFirstLink {
		t.Fatalf("flow bytes %d below first-link size %d", flow.Bytes, wantFirstLink)
	}
	shrink := onioncrypt.Null{}.SymOverhead()
	wantForward := 0
	size := outer
	for i := 0; i < len(relays); i++ {
		wantForward += msgHeaderSize + 4 + size
		size -= shrink
	}
	// Final link carries the responder blob: dest field stripped too.
	if flow.Bytes < wantForward {
		t.Fatalf("accounted %d bytes, forward model alone predicts %d", flow.Bytes, wantForward)
	}
}

func TestTTLExpiryReclaimsState(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 11)
	// Short TTL node set.
	eng := sim.NewEngine(11)
	lat, _ := topology.Uniform(8, 100*sim.Millisecond)
	net := netsim.New(eng, lat)
	dir, _ := NewDirectory(onioncrypt.Null{}, eng.RNG(), 8)
	var nodes []*Node
	for i := 0; i < 8; i++ {
		mux := netsim.NewMux()
		nodes = append(nodes, NewNode(net, netsim.NodeID(i), dir, mux, NodeConfig{
			StateTTL: 30 * sim.Second,
			OnData:   func(ReplyHandle, []byte) {},
		}))
		net.SetHandler(netsim.NodeID(i), mux)
	}
	var established bool
	_, err := nodes[0].Initiator.Construct([]netsim.NodeID{2, 3, 4}, 7, nil, func(_ *Path, ok bool) { established = ok })
	if err != nil {
		t.Fatal(err)
	}
	eng.Run(10 * sim.Second)
	if !established {
		t.Fatal("construction failed")
	}
	if nodes[2].Relay.States() != 1 {
		t.Fatalf("relay 2 states = %d, want 1", nodes[2].Relay.States())
	}
	// After two TTL periods with no refreshing traffic the state must be
	// reclaimed (§4.3 orphaned-state cleanup).
	eng.Run(2 * sim.Minute)
	if nodes[2].Relay.States() != 0 {
		t.Fatalf("relay 2 states = %d after TTL, want 0", nodes[2].Relay.States())
	}
	if nodes[2].Relay.Stats().Expired == 0 {
		t.Fatal("expiry not counted")
	}
	_ = e // silence the unused helper env (constructed to keep seeds aligned)
}

func TestRelayStatsProgress(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 12)
	p, ok := construct(t, e, 0, []netsim.NodeID{2, 3, 4}, 7)
	if !ok {
		t.Fatal("construction failed")
	}
	if err := e.nodes[0].Initiator.SendData(p, []byte("x"), nil); err != nil {
		t.Fatal(err)
	}
	e.eng.Run(e.eng.Now() + 10*sim.Second)
	mid := e.nodes[3].Relay.Stats()
	if mid.Constructed != 1 || mid.DataRelayed != 1 || mid.ReverseHops != 1 || mid.AcksRelayed != 1 {
		t.Fatalf("middle relay stats = %+v", mid)
	}
	last := e.nodes[4].Relay.Stats()
	if last.Delivered != 1 {
		t.Fatalf("terminal relay stats = %+v", last)
	}
}

func TestDirectoryValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	if _, err := NewDirectory(onioncrypt.Null{}, eng.RNG(), 0); err == nil {
		t.Fatal("empty directory accepted")
	}
	d, err := NewDirectory(onioncrypt.Null{}, eng.RNG(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 || d.Suite().Name() != "null" {
		t.Fatal("directory accessors broken")
	}
	if len(d.Public(1)) == 0 || len(d.Private(1)) == 0 {
		t.Fatal("keys missing")
	}
}

func TestPayloadOnionSizePrediction(t *testing.T) {
	// The analytic size must match the real encoding exactly for both
	// suites (bandwidth figures depend on it).
	for _, suite := range []onioncrypt.Suite{onioncrypt.ECIES{}, onioncrypt.Null{}} {
		eng := sim.NewEngine(13)
		rng := eng.RNG()
		keys := make([][]byte, 3)
		for i := range keys {
			keys[i], _ = suite.NewSymKey(rng)
		}
		respKey, _ := suite.NewSymKey(rng)
		kp, _ := suite.GenerateKeyPair(rng)
		sealed, _ := suite.Seal(rng, kp.Public, respKey)
		plain := make([]byte, 1024)
		body, err := BuildPayloadOnion(suite, rng, keys, 5, respKey, sealed, plain)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := len(body), PayloadOnionSize(suite, 3, 1024); got != want {
			t.Fatalf("%s: onion size %d, model predicts %d", suite.Name(), got, want)
		}
	}
}
