package onion

import (
	"math/rand"

	"resilientmix/internal/netsim"
	"resilientmix/internal/obs"
	"resilientmix/internal/onioncrypt"
	"resilientmix/internal/sim"
)

// DefaultStateTTL is how long a relay keeps an idle path state before
// reclaiming it (§4.3). Payload traffic refreshes the TTL.
const DefaultStateTTL = 10 * sim.Minute

// RelayStats counts a relay's activity.
type RelayStats struct {
	Constructed  uint64 // path states installed
	DataRelayed  uint64 // payload onion layers forwarded
	Delivered    uint64 // responder deliveries (terminal hops)
	ReverseHops  uint64 // reverse messages wrapped and forwarded
	AcksRelayed  uint64 // construction acks forwarded backward
	DroppedNoSID uint64 // messages with unknown or expired stream IDs
	DroppedBad   uint64 // messages that failed to decrypt or parse
	Expired      uint64 // path states reclaimed by the TTL sweeper
	Wiped        uint64 // path states lost to a node failure
}

// Relay is one node's mix functionality: it installs path state from
// construction onions and forwards payload, delivery, reverse and ack
// traffic along cached streams. All state is lost when the node fails,
// which is exactly the fragility the paper studies.
type Relay struct {
	id    netsim.NodeID
	net   *netsim.Network
	eng   *sim.Engine
	rng   *rand.Rand
	suite onioncrypt.Suite
	priv  onioncrypt.PrivateKey
	ttl   sim.Time

	forward map[StreamID]*pathState // keyed by upstream (inbound) stream ID
	reverse map[StreamID]*pathState // keyed by downstream (outbound) stream ID

	stats RelayStats
}

// NewRelay creates the relay for a node, registers its churn listener
// (state is wiped when the node goes down) and starts the TTL sweeper.
func NewRelay(net *netsim.Network, id netsim.NodeID, suite onioncrypt.Suite, priv onioncrypt.PrivateKey, ttl sim.Time) *Relay {
	if ttl <= 0 {
		ttl = DefaultStateTTL
	}
	r := &Relay{
		id:      id,
		net:     net,
		eng:     net.Engine(),
		rng:     net.Engine().RNG(),
		suite:   suite,
		priv:    priv,
		ttl:     ttl,
		forward: make(map[StreamID]*pathState),
		reverse: make(map[StreamID]*pathState),
	}
	net.AddStateListener(func(nid netsim.NodeID, up bool) {
		if nid == id && !up {
			r.wipe()
		}
	})
	r.eng.Every(ttl, ttl, r.sweep)
	return r
}

// Stats returns a snapshot of the relay's counters.
func (r *Relay) Stats() RelayStats { return r.stats }

// States returns the number of live path states.
func (r *Relay) States() int { return len(r.forward) }

func (r *Relay) wipe() {
	r.stats.Wiped += uint64(len(r.forward))
	r.forward = make(map[StreamID]*pathState)
	r.reverse = make(map[StreamID]*pathState)
}

func (r *Relay) sweep() {
	now := r.eng.Now()
	for sid, st := range r.forward {
		if st.expires <= now {
			delete(r.forward, sid)
			r.stats.Expired++
		}
	}
	for sid, st := range r.reverse {
		if st.expires <= now {
			delete(r.reverse, sid)
		}
	}
}

// lookup returns a live state from the map, dropping expired entries.
func (r *Relay) lookup(m map[StreamID]*pathState, sid StreamID) *pathState {
	st, ok := m[sid]
	if !ok {
		r.stats.DroppedNoSID++
		return nil
	}
	if st.expires <= r.eng.Now() {
		delete(m, sid)
		r.stats.DroppedNoSID++
		return nil
	}
	return st
}

func (r *Relay) newSID() StreamID { return StreamID(r.rng.Uint64()) }

// handleConstruct installs path state from one construction onion layer
// and either forwards the inner onion or, at the terminal relay,
// acknowledges back toward the initiator.
func (r *Relay) handleConstruct(from netsim.NodeID, msg ConstructMsg) {
	layer, err := ParseConstructLayer(r.suite, r.priv, msg.Onion)
	if err != nil {
		r.stats.DroppedBad++
		return
	}
	st := &pathState{
		prev:     from,
		prevSID:  msg.SID,
		next:     layer.Next,
		nextSID:  r.newSID(),
		key:      layer.Key,
		terminal: layer.Terminal,
		expires:  r.eng.Now() + r.ttl,
	}
	r.forward[msg.SID] = st
	r.reverse[st.nextSID] = st
	r.stats.Constructed++
	if layer.Terminal {
		ack := ConstructAck{SID: msg.SID, Flow: msg.Flow}
		send(r.net, r.id, from, ack, ack.WireSize(), msg.Flow, obs.Tag{})
		return
	}
	fwd := ConstructMsg{SID: st.nextSID, Onion: layer.Inner, Flow: msg.Flow}
	send(r.net, r.id, layer.Next, fwd, fwd.WireSize(), msg.Flow, obs.Tag{})
}

// handleConstructData installs path state AND forwards the piggybacked
// payload in one pass (§4.2's combined construction/sending). The
// terminal relay delivers the responder blob and acks like an ordinary
// construction.
func (r *Relay) handleConstructData(from netsim.NodeID, msg ConstructDataMsg) {
	layer, err := ParseConstructLayer(r.suite, r.priv, msg.Onion)
	if err != nil {
		r.stats.DroppedBad++
		emitRelayDropped(r.net, r.id, msg.Trace, msg.WireSize(), obs.ReasonBadLayer)
		return
	}
	pt, err := r.suite.SymOpen(layer.Key, msg.Body)
	if err != nil {
		r.stats.DroppedBad++
		emitRelayDropped(r.net, r.id, msg.Trace, msg.WireSize(), obs.ReasonBadLayer)
		return
	}
	st := &pathState{
		prev:     from,
		prevSID:  msg.SID,
		next:     layer.Next,
		nextSID:  r.newSID(),
		key:      layer.Key,
		terminal: layer.Terminal,
		expires:  r.eng.Now() + r.ttl,
	}
	r.forward[msg.SID] = st
	r.reverse[st.nextSID] = st
	r.stats.Constructed++
	if layer.Terminal {
		dest, blob, err := ParseTerminalPayload(pt)
		if err != nil {
			r.stats.DroppedBad++
			emitRelayDropped(r.net, r.id, msg.Trace, msg.WireSize(), obs.ReasonBadLayer)
			return
		}
		if dest != st.next {
			delete(r.reverse, st.nextSID)
			st.next = dest
			st.nextSID = r.newSID()
			r.reverse[st.nextSID] = st
		}
		r.stats.Delivered++
		d := DeliverMsg{SID: st.nextSID, Body: blob, Flow: msg.Flow, Trace: msg.Trace.Next()}
		send(r.net, r.id, dest, d, d.WireSize(), msg.Flow, d.Trace)
		ack := ConstructAck{SID: msg.SID, Flow: msg.Flow}
		send(r.net, r.id, from, ack, ack.WireSize(), msg.Flow, obs.Tag{})
		return
	}
	r.stats.DataRelayed++
	fwd := ConstructDataMsg{SID: st.nextSID, Onion: layer.Inner, Body: pt, Flow: msg.Flow, Trace: msg.Trace.Next()}
	send(r.net, r.id, layer.Next, fwd, fwd.WireSize(), msg.Flow, fwd.Trace)
}

// handleConstructAck forwards an ack one hop back toward the initiator.
func (r *Relay) handleConstructAck(_ netsim.NodeID, msg ConstructAck) {
	st := r.lookup(r.reverse, msg.SID)
	if st == nil {
		return
	}
	r.stats.AcksRelayed++
	ack := ConstructAck{SID: st.prevSID, Flow: msg.Flow}
	send(r.net, r.id, st.prev, ack, ack.WireSize(), msg.Flow, obs.Tag{})
}

// handleData strips one payload layer and forwards it. At the terminal
// relay the layer reveals the destination (normally the cached
// responder; a different one rebinds the stream — path reuse, §4.4) and
// the blob is delivered to it.
func (r *Relay) handleData(_ netsim.NodeID, msg DataMsg) {
	st := r.lookup(r.forward, msg.SID)
	if st == nil {
		emitRelayDropped(r.net, r.id, msg.Trace, msg.WireSize(), obs.ReasonNoState)
		return
	}
	pt, err := r.suite.SymOpen(st.key, msg.Body)
	if err != nil {
		r.stats.DroppedBad++
		emitRelayDropped(r.net, r.id, msg.Trace, msg.WireSize(), obs.ReasonBadLayer)
		return
	}
	st.expires = r.eng.Now() + r.ttl // payload refreshes the TTL (§4.3)
	if !st.terminal {
		r.stats.DataRelayed++
		fwd := DataMsg{SID: st.nextSID, Body: pt, Flow: msg.Flow, Trace: msg.Trace.Next()}
		send(r.net, r.id, st.next, fwd, fwd.WireSize(), msg.Flow, fwd.Trace)
		return
	}
	dest, blob, err := ParseTerminalPayload(pt)
	if err != nil {
		r.stats.DroppedBad++
		emitRelayDropped(r.net, r.id, msg.Trace, msg.WireSize(), obs.ReasonBadLayer)
		return
	}
	if dest != st.next {
		// §4.4: the initiator multiplexed a new responder onto this
		// path; generate a fresh downstream stream ID for it.
		delete(r.reverse, st.nextSID)
		st.next = dest
		st.nextSID = r.newSID()
		r.reverse[st.nextSID] = st
	}
	r.stats.Delivered++
	d := DeliverMsg{SID: st.nextSID, Body: blob, Flow: msg.Flow, Trace: msg.Trace.Next()}
	send(r.net, r.id, dest, d, d.WireSize(), msg.Flow, d.Trace)
}

// handleReverse wraps a response in this relay's symmetric layer and
// forwards it toward the initiator.
func (r *Relay) handleReverse(_ netsim.NodeID, msg ReverseMsg) {
	st := r.lookup(r.reverse, msg.SID)
	if st == nil {
		return
	}
	wrapped, err := r.suite.SymSeal(r.rng, st.key, msg.Body)
	if err != nil {
		r.stats.DroppedBad++
		return
	}
	st.expires = r.eng.Now() + r.ttl
	r.stats.ReverseHops++
	rev := ReverseMsg{SID: st.prevSID, Body: wrapped, Flow: msg.Flow}
	send(r.net, r.id, st.prev, rev, rev.WireSize(), msg.Flow, obs.Tag{})
}

// hasReverse reports whether sid belongs to one of this relay's
// downstream streams (used by the node dispatcher).
func (r *Relay) hasReverse(sid StreamID) bool {
	_, ok := r.reverse[sid]
	return ok
}
