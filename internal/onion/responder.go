package onion

import (
	"math/rand"

	"resilientmix/internal/metrics"
	"resilientmix/internal/netsim"
	"resilientmix/internal/obs"
	"resilientmix/internal/onioncrypt"
	"resilientmix/internal/sim"
)

// DataFunc receives an application payload at the responder together
// with a handle for replying along the reverse path.
type DataFunc func(h ReplyHandle, plain []byte)

// Responder is the destination-side endpoint D: it unseals the per-path
// symmetric key with its private key, decrypts application payloads,
// and can send replies back along the delivering path (§4.2).
type Responder struct {
	id     netsim.NodeID
	net    *netsim.Network
	eng    *sim.Engine
	rng    *rand.Rand
	suite  onioncrypt.Suite
	priv   onioncrypt.PrivateKey
	onData DataFunc
	ttl    sim.Time

	streams map[StreamID]*respStream // keyed by the terminal relay's downstream sid
	dropped uint64
}

type respStream struct {
	relay   netsim.NodeID
	key     []byte
	expires sim.Time
}

// NewResponder creates the responder endpoint for a node. The onData
// callback runs for every decrypted payload.
func NewResponder(net *netsim.Network, id netsim.NodeID, suite onioncrypt.Suite, priv onioncrypt.PrivateKey, ttl sim.Time, onData DataFunc) *Responder {
	if ttl <= 0 {
		ttl = DefaultStateTTL
	}
	r := &Responder{
		id:      id,
		net:     net,
		eng:     net.Engine(),
		rng:     net.Engine().RNG(),
		suite:   suite,
		priv:    priv,
		onData:  onData,
		ttl:     ttl,
		streams: make(map[StreamID]*respStream),
	}
	net.AddStateListener(func(nid netsim.NodeID, up bool) {
		if nid == id && !up {
			r.streams = make(map[StreamID]*respStream)
		}
	})
	r.eng.Every(ttl, ttl, r.sweep)
	return r
}

// Dropped returns the number of undecryptable deliveries.
func (r *Responder) Dropped() uint64 { return r.dropped }

func (r *Responder) sweep() {
	now := r.eng.Now()
	for sid, st := range r.streams {
		if st.expires <= now {
			delete(r.streams, sid)
		}
	}
}

// handleDeliver processes a delivery from a terminal relay.
func (r *Responder) handleDeliver(from netsim.NodeID, msg DeliverMsg) {
	sealedKey, ct, err := ParseResponderBlob(msg.Body)
	if err != nil {
		r.dropped++
		emitRelayDropped(r.net, r.id, msg.Trace, msg.WireSize(), obs.ReasonBadLayer)
		return
	}
	key, err := r.suite.Open(r.priv, sealedKey)
	if err != nil || len(key) != onioncrypt.SymKeySize {
		r.dropped++
		emitRelayDropped(r.net, r.id, msg.Trace, msg.WireSize(), obs.ReasonBadLayer)
		return
	}
	plain, err := r.suite.SymOpen(key, ct)
	if err != nil {
		r.dropped++
		emitRelayDropped(r.net, r.id, msg.Trace, msg.WireSize(), obs.ReasonBadLayer)
		return
	}
	r.streams[msg.SID] = &respStream{relay: from, key: key, expires: r.eng.Now() + r.ttl}
	if r.onData != nil {
		h := ReplyHandle{resp: r, relay: from, sid: msg.SID, key: key, Flow: msg.Flow}
		r.onData(h, plain)
	}
}

// ReplyHandle lets the responder application answer along the reverse
// path that delivered a payload.
type ReplyHandle struct {
	resp  *Responder
	relay netsim.NodeID
	sid   StreamID
	key   []byte
	// Flow is the bandwidth account of the delivering message; replies
	// sent through the handle default to charging it.
	Flow *metrics.Flow
}

// From returns the terminal relay the payload arrived through.
func (h ReplyHandle) From() netsim.NodeID { return h.relay }

// StreamID returns the delivering stream's identifier.
func (h ReplyHandle) StreamID() StreamID { return h.sid }

// Reply encrypts plain with the stream's symmetric key and sends it
// back up the path. It reports whether the message entered the network.
func (h ReplyHandle) Reply(plain []byte, flow *metrics.Flow) bool {
	r := h.resp
	ct, err := r.suite.SymSeal(r.rng, h.key, plain)
	if err != nil {
		return false
	}
	msg := ReverseMsg{SID: h.sid, Body: ct, Flow: flow}
	return send(r.net, r.id, h.relay, msg, msg.WireSize(), flow, obs.Tag{})
}
