// Package onion implements the paper's anonymous routing machinery on
// top of the simulated network: layered path-construction onions (§4.1),
// symmetric payload onions with the responder key sealed to the
// responder's public key (§4.2), relay path-state caches with TTL
// expiry (§4.3), last-hop destination override for path reuse (§4.4),
// construction acknowledgments and reverse-path (response) routing.
//
// The protocols of internal/core (CurMix, SimRep, SimEra) are thin
// orchestrations over this package: they decide which paths exist and
// what segments travel on them; this package makes individual paths
// work.
package onion

import (
	"resilientmix/internal/metrics"
	"resilientmix/internal/netsim"
	"resilientmix/internal/obs"
	"resilientmix/internal/sim"
)

// StreamID identifies one hop-to-hop stream. Each relay maps the
// upstream stream ID to a freshly drawn downstream one, so observers
// cannot correlate a path's links by identifier.
type StreamID uint64

// msgHeaderSize is the serialized size of the fixed message header:
// 1 byte kind + 8 bytes stream ID.
const msgHeaderSize = 1 + 8

// ConstructMsg carries a path-construction onion toward the next relay
// (§4.1: [Path_i, sid_{i-1}]).
type ConstructMsg struct {
	SID   StreamID
	Onion []byte
	Flow  *metrics.Flow
}

// WireSize returns the on-the-wire size.
func (m ConstructMsg) WireSize() int { return msgHeaderSize + 4 + len(m.Onion) }

// ConstructDataMsg combines path construction with a payload in a single
// pass (§4.2: "We can perform path construction and message sending in
// the same time... This allows the initiator to form paths on-demand
// ... without message delays"). Each relay installs state from its onion
// layer AND strips one payload layer, forwarding both inward.
type ConstructDataMsg struct {
	SID   StreamID
	Onion []byte
	Body  []byte
	Flow  *metrics.Flow
	// Trace is the data-plane correlation tag; each relay forwards it
	// advanced one hop. Trace metadata only — never protocol input.
	Trace obs.Tag
}

// WireSize returns the on-the-wire size.
func (m ConstructDataMsg) WireSize() int { return msgHeaderSize + 4 + len(m.Onion) + 4 + len(m.Body) }

// ConstructAck travels hop-by-hop back to the initiator once the last
// relay has installed its path state, implementing the end-to-end
// acknowledgment of §4.5 for construction.
type ConstructAck struct {
	SID  StreamID
	Flow *metrics.Flow
}

// WireSize returns the on-the-wire size.
func (m ConstructAck) WireSize() int { return msgHeaderSize }

// DataMsg carries one payload onion layer downstream between relays
// (§4.2: [sid_i, PayLoad_{i+1}]).
type DataMsg struct {
	SID  StreamID
	Body []byte
	Flow *metrics.Flow
	// Trace is the data-plane correlation tag; see ConstructDataMsg.
	Trace obs.Tag
}

// WireSize returns the on-the-wire size.
func (m DataMsg) WireSize() int { return msgHeaderSize + 4 + len(m.Body) }

// DeliverMsg is the final hop: the terminal relay hands the responder
// blob to the responder D.
type DeliverMsg struct {
	SID  StreamID
	Body []byte
	Flow *metrics.Flow
	// Trace is the data-plane correlation tag; see ConstructDataMsg.
	Trace obs.Tag
}

// WireSize returns the on-the-wire size.
func (m DeliverMsg) WireSize() int { return msgHeaderSize + 4 + len(m.Body) }

// ReverseMsg travels from the responder back toward the initiator; each
// relay adds one symmetric layer with its cached key (§4.2 "On each
// reverse path, the payload is encrypted by the cached symmetric key at
// each hop").
type ReverseMsg struct {
	SID  StreamID
	Body []byte
	Flow *metrics.Flow
}

// WireSize returns the on-the-wire size.
func (m ReverseMsg) WireSize() int { return msgHeaderSize + 4 + len(m.Body) }

// send transmits a payload and charges its size to the flow if it was
// actually placed on the wire. tag is the data-plane correlation tag
// stamped on the wire message (zero for untagged traffic).
func send(net *netsim.Network, from, to netsim.NodeID, payload any, size int, flow *metrics.Flow, tag obs.Tag) bool {
	if net.Send(from, to, netsim.Message{Payload: payload, Size: size, Trace: tag}) {
		flow.Add(size)
		return true
	}
	return false
}

// emitRelayDropped records a tagged data-plane message consumed above
// the wire — a relay or responder that could not process it. Without
// this event the message's causal chain would end at a MsgDelivered
// with no explanation. Untagged messages are not recorded: their drops
// are already aggregated in relay stats.
func emitRelayDropped(net *netsim.Network, node netsim.NodeID, tag obs.Tag, size int, reason obs.Reason) {
	if tag.ID == 0 {
		return
	}
	tr := net.Tracer()
	if tr == nil {
		return
	}
	tr.Emit(obs.Event{
		Type: obs.RelayDropped, At: int64(net.Engine().Now()),
		Node: int(node), Peer: -1, ID: tag.ID, Seq: int64(tag.Seg),
		Slot: int(tag.Slot), Hop: int(tag.Hop), Size: size, Reason: reason,
	})
}

// pathState is one relay's cached tuple for a stream:
// [P_{i-1}, sid_{i-1}, P_{i+1}, sid_i, R_i] plus a TTL (§4.3).
type pathState struct {
	prev     netsim.NodeID
	prevSID  StreamID
	next     netsim.NodeID
	nextSID  StreamID
	key      []byte
	terminal bool // next hop is the responder
	expires  sim.Time
}
