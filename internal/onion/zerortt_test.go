package onion

import (
	"bytes"
	"testing"

	"resilientmix/internal/netsim"
	"resilientmix/internal/onioncrypt"
	"resilientmix/internal/sim"
)

func TestConstructWithDataDeliversInOnePass(t *testing.T) {
	for _, suite := range []onioncrypt.Suite{onioncrypt.ECIES{}, onioncrypt.Null{}} {
		t.Run(suite.Name(), func(t *testing.T) {
			e := newEnv(t, 8, suite, 61)
			msg := []byte("payload riding the construction onion")
			var established bool
			start := e.eng.Now()
			p, err := e.nodes[0].Initiator.ConstructWithData([]netsim.NodeID{2, 3, 4}, 7, msg, nil,
				func(_ *Path, ok bool) { established = ok })
			if err != nil {
				t.Fatal(err)
			}
			// The payload must arrive after exactly L+1 one-way hops —
			// no separate construction round trip first.
			var deliveredAt sim.Time
			e.eng.Run(start + 250*sim.Millisecond) // 4 hops x 50ms = 200ms
			if len(e.received) != 1 || !bytes.Equal(e.received[0], msg) {
				t.Fatalf("received %q within one pass", e.received)
			}
			deliveredAt = e.eng.Now()
			_ = deliveredAt
			// The construction ack completes slightly later.
			e.eng.Run(e.eng.Now() + sim.Second)
			if !established {
				t.Fatal("combined construction never acked")
			}
			if p.State != PathEstablished {
				t.Fatalf("path state = %v", p.State)
			}
			// And the path is fully usable for ordinary traffic after.
			if err := e.nodes[0].Initiator.SendData(p, []byte("second"), nil); err != nil {
				t.Fatal(err)
			}
			e.eng.Run(e.eng.Now() + sim.Second)
			if len(e.received) != 2 {
				t.Fatal("path unusable after combined construction")
			}
			// The echo replies from both messages traverse the reverse path.
			if len(e.replies) != 2 {
				t.Fatalf("replies = %d, want 2", len(e.replies))
			}
		})
	}
}

func TestConstructWithDataFasterThanTwoPass(t *testing.T) {
	// Quantify §4.2's claim ("without message delays"): with 50ms links
	// and L=3, the combined pass delivers the first message in exactly
	// 4 hops = 200ms, while construct-then-send needs the construction
	// pass (4 hops), the ack chain (3 hops) and then the data pass
	// (4 hops) = 550ms.
	onePass := func() sim.Time {
		e := newEnv(t, 8, onioncrypt.Null{}, 62)
		var at sim.Time = -1
		e.onDelivered = func(when sim.Time) { at = when }
		_, err := e.nodes[0].Initiator.ConstructWithData([]netsim.NodeID{2, 3, 4}, 7, []byte("m"), nil, func(*Path, bool) {})
		if err != nil {
			t.Fatal(err)
		}
		e.eng.Run(10 * sim.Second)
		return at
	}
	twoPass := func() sim.Time {
		e := newEnv(t, 8, onioncrypt.Null{}, 62)
		var at sim.Time = -1
		e.onDelivered = func(when sim.Time) { at = when }
		var ackAt sim.Time = -1
		p, err := e.nodes[0].Initiator.Construct([]netsim.NodeID{2, 3, 4}, 7, nil, func(_ *Path, ok bool) {
			if ok {
				ackAt = e.eng.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		e.eng.Run(10 * sim.Second)
		if ackAt < 0 {
			t.Fatal("construction failed")
		}
		sendAt := e.eng.Now()
		if err := e.nodes[0].Initiator.SendData(p, []byte("m"), nil); err != nil {
			t.Fatal(err)
		}
		e.eng.Run(e.eng.Now() + 10*sim.Second)
		// Total time to first delivery had the send been issued the
		// moment the ack arrived.
		return ackAt + (at - sendAt)
	}
	one, two := onePass(), twoPass()
	if one != 200*sim.Millisecond {
		t.Fatalf("one-pass delivery at %v, want exactly 4 hops = 200ms", one)
	}
	// Construction: 3 forward hops to the terminal relay + 3 ack hops
	// back = 300ms, then the data pass adds 4 hops = 200ms.
	if two != 500*sim.Millisecond {
		t.Fatalf("two-pass delivery at %v, want 500ms (3+3+4 hops)", two)
	}
}

func TestConstructWithDataValidation(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 63)
	if _, err := e.nodes[0].Initiator.ConstructWithData(nil, 7, []byte("x"), nil, nil); err == nil {
		t.Fatal("empty relay list accepted")
	}
	if _, err := e.nodes[0].Initiator.ConstructWithData([]netsim.NodeID{0, 2}, 7, []byte("x"), nil, nil); err == nil {
		t.Fatal("initiator as relay accepted")
	}
	if _, err := e.nodes[0].Initiator.ConstructWithData([]netsim.NodeID{7, 2}, 7, []byte("x"), nil, nil); err == nil {
		t.Fatal("responder as relay accepted")
	}
}

func TestConstructWithDataThroughDeadRelayTimesOut(t *testing.T) {
	e := newEnv(t, 8, onioncrypt.Null{}, 64)
	e.net.SetUp(3, false)
	var done, ok bool
	_, err := e.nodes[0].Initiator.ConstructWithData([]netsim.NodeID{2, 3, 4}, 7, []byte("x"), nil,
		func(_ *Path, o bool) { done, ok = true, o })
	if err != nil {
		t.Fatal(err)
	}
	e.eng.Run(DefaultConstructTimeout + sim.Second)
	if !done || ok {
		t.Fatalf("done=%v ok=%v", done, ok)
	}
	if len(e.received) != 0 {
		t.Fatal("payload delivered through a dead relay")
	}
}
