package onioncrypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/ecdh"
	"crypto/sha256"
	"fmt"
	"io"
)

const (
	x25519KeySize = 32
	gcmNonceSize  = 12
	gcmTagSize    = 16
)

// ECIES is the real cryptography suite: X25519 + SHA-256 KDF + AES-GCM.
//
// Seal format:   ephemeralPub(32) || AES-GCM(ct+tag)        — nonce is all
// zeros, safe because every seal uses a fresh ephemeral key.
// SymSeal format: nonce(12) || AES-GCM(ct+tag).
type ECIES struct{}

var _ Suite = ECIES{}

// Name returns "ecies".
func (ECIES) Name() string { return "ecies" }

// newX25519Key derives a private key from 32 bytes of r. We bypass
// ecdh.GenerateKey because recent Go releases may ignore the caller's
// random source there, and simulations need determinism from a seeded
// reader. X25519 accepts any 32-byte string as a private key (clamping
// happens inside the scalar multiplication).
func newX25519Key(r io.Reader) (*ecdh.PrivateKey, error) {
	seed := make([]byte, x25519KeySize)
	if _, err := io.ReadFull(r, seed); err != nil {
		return nil, fmt.Errorf("onioncrypt: drawing X25519 key: %w", err)
	}
	priv, err := ecdh.X25519().NewPrivateKey(seed)
	if err != nil {
		return nil, fmt.Errorf("onioncrypt: deriving X25519 key: %w", err)
	}
	return priv, nil
}

// GenerateKeyPair creates an X25519 key pair.
func (ECIES) GenerateKeyPair(r io.Reader) (KeyPair, error) {
	priv, err := newX25519Key(r)
	if err != nil {
		return KeyPair{}, err
	}
	return KeyPair{
		Public:  PublicKey(priv.PublicKey().Bytes()),
		Private: PrivateKey(priv.Bytes()),
	}, nil
}

// kdf derives an AES-256 key from the ECDH shared secret, bound to both
// public keys.
func kdf(shared, ephPub, recipientPub []byte) []byte {
	h := sha256.New()
	h.Write([]byte("resilientmix-ecies-v1"))
	h.Write(shared)
	h.Write(ephPub)
	h.Write(recipientPub)
	return h.Sum(nil)
}

func newGCM(key []byte) (cipher.AEAD, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return cipher.NewGCM(block)
}

// Seal encrypts plaintext to pub with an ephemeral X25519 key.
func (ECIES) Seal(r io.Reader, pub PublicKey, plaintext []byte) ([]byte, error) {
	recipient, err := ecdh.X25519().NewPublicKey(pub)
	if err != nil {
		return nil, fmt.Errorf("onioncrypt: bad recipient key: %w", err)
	}
	eph, err := newX25519Key(r)
	if err != nil {
		return nil, err
	}
	shared, err := eph.ECDH(recipient)
	if err != nil {
		return nil, fmt.Errorf("onioncrypt: ECDH: %w", err)
	}
	ephPub := eph.PublicKey().Bytes()
	gcm, err := newGCM(kdf(shared, ephPub, pub))
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcmNonceSize) // zero: key is single-use
	out := make([]byte, 0, x25519KeySize+len(plaintext)+gcmTagSize)
	out = append(out, ephPub...)
	return gcm.Seal(out, nonce, plaintext, nil), nil
}

// Open decrypts a sealed ciphertext with the private key.
func (ECIES) Open(priv PrivateKey, ciphertext []byte) ([]byte, error) {
	if len(ciphertext) < x25519KeySize+gcmTagSize {
		return nil, ErrDecrypt
	}
	self, err := ecdh.X25519().NewPrivateKey(priv)
	if err != nil {
		return nil, fmt.Errorf("onioncrypt: bad private key: %w", err)
	}
	ephPub, err := ecdh.X25519().NewPublicKey(ciphertext[:x25519KeySize])
	if err != nil {
		return nil, ErrDecrypt
	}
	shared, err := self.ECDH(ephPub)
	if err != nil {
		return nil, ErrDecrypt
	}
	gcm, err := newGCM(kdf(shared, ephPub.Bytes(), self.PublicKey().Bytes()))
	if err != nil {
		return nil, err
	}
	nonce := make([]byte, gcmNonceSize)
	pt, err := gcm.Open(nil, nonce, ciphertext[x25519KeySize:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// SealOverhead returns the asymmetric layer overhead (48 bytes).
func (ECIES) SealOverhead() int { return x25519KeySize + gcmTagSize }

// NewSymKey draws a fresh AES-256 key.
func (ECIES) NewSymKey(r io.Reader) ([]byte, error) {
	key := make([]byte, SymKeySize)
	if _, err := io.ReadFull(r, key); err != nil {
		return nil, fmt.Errorf("onioncrypt: drawing symmetric key: %w", err)
	}
	return key, nil
}

// SymSeal encrypts one payload layer with AES-GCM under a random nonce.
func (ECIES) SymSeal(r io.Reader, key, plaintext []byte) ([]byte, error) {
	if len(key) != SymKeySize {
		return nil, ErrBadKeySize
	}
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, gcmNonceSize, gcmNonceSize+len(plaintext)+gcmTagSize)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, fmt.Errorf("onioncrypt: drawing nonce: %w", err)
	}
	return gcm.Seal(out, out[:gcmNonceSize], plaintext, nil), nil
}

// SymOpen decrypts one payload layer.
func (ECIES) SymOpen(key, ciphertext []byte) ([]byte, error) {
	if len(key) != SymKeySize {
		return nil, ErrBadKeySize
	}
	if len(ciphertext) < gcmNonceSize+gcmTagSize {
		return nil, ErrDecrypt
	}
	gcm, err := newGCM(key)
	if err != nil {
		return nil, err
	}
	pt, err := gcm.Open(nil, ciphertext[:gcmNonceSize], ciphertext[gcmNonceSize:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// SymOverhead returns the symmetric layer overhead (28 bytes).
func (ECIES) SymOverhead() int { return gcmNonceSize + gcmTagSize }
