package onioncrypt

import (
	"errors"
	"testing"
)

// failReader errors after a fixed number of bytes.
type failReader struct{ left int }

func (f *failReader) Read(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errors.New("entropy exhausted")
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	return n, nil
}

func TestKeygenFailsWithoutEntropy(t *testing.T) {
	for _, s := range suites() {
		if _, err := s.GenerateKeyPair(&failReader{left: 5}); err == nil {
			t.Errorf("%s: keygen succeeded on a failing reader", s.Name())
		}
		if _, err := s.NewSymKey(&failReader{left: 3}); err == nil {
			t.Errorf("%s: NewSymKey succeeded on a failing reader", s.Name())
		}
	}
}

func TestSealRejectsBadRecipientKey(t *testing.T) {
	for _, s := range suites() {
		if _, err := s.Seal(rng(1), make(PublicKey, 7), []byte("x")); err == nil {
			t.Errorf("%s: seal to a 7-byte key succeeded", s.Name())
		}
	}
}

func TestOpenRejectsBadPrivateKey(t *testing.T) {
	for _, s := range suites() {
		r := rng(2)
		kp, err := s.GenerateKeyPair(r)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := s.Seal(r, kp.Public, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Open(make(PrivateKey, 5), ct); err == nil {
			t.Errorf("%s: open with a 5-byte private key succeeded", s.Name())
		}
	}
}

func TestECIESSealFailsWithoutEntropy(t *testing.T) {
	s := ECIES{}
	kp, err := s.GenerateKeyPair(rng(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Seal(&failReader{left: 4}, kp.Public, []byte("x")); err == nil {
		t.Error("seal succeeded on a failing reader")
	}
	key, err := s.NewSymKey(rng(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.SymSeal(&failReader{left: 2}, key, []byte("x")); err == nil {
		t.Error("SymSeal succeeded on a failing reader")
	}
}

func TestNullSymOpenTruncation(t *testing.T) {
	s := Null{}
	key, _ := s.NewSymKey(rng(4))
	ct, _ := s.SymSeal(rng(4), key, []byte("hello"))
	// Truncating the plaintext region must be caught by the embedded
	// length.
	if _, err := s.SymOpen(key, ct[:len(ct)-1]); err == nil {
		t.Error("truncated Null SymSeal ciphertext opened")
	}
	if _, err := s.SymOpen(key, ct[:10]); err == nil {
		t.Error("header-only ciphertext opened")
	}
}

func TestECIESSymOpenTooShort(t *testing.T) {
	s := ECIES{}
	key, _ := s.NewSymKey(rng(5))
	if _, err := s.SymOpen(key, make([]byte, 5)); err == nil {
		t.Error("5-byte GCM ciphertext opened")
	}
}
