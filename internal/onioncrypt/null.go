package onioncrypt

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Null is the simulation suite: no real encryption, but identical
// on-the-wire overheads to ECIES so bandwidth results carry over, and
// key checks that make wrong-recipient or wrong-key opens fail loudly.
//
// Seal format:   recipientPub(32) || len(4) || pad(12) || plaintext
// SymSeal format: key[0:24]-check || len(4) || plaintext       (28 bytes)
//
// The embedded plaintext length gives truncation detection (though not
// integrity). A Null "private key" equals its public key.
type Null struct{}

var _ Suite = Null{}

// Name returns "null".
func (Null) Name() string { return "null" }

// GenerateKeyPair draws 32 random bytes used as both halves.
func (Null) GenerateKeyPair(r io.Reader) (KeyPair, error) {
	k := make([]byte, x25519KeySize)
	if _, err := io.ReadFull(r, k); err != nil {
		return KeyPair{}, fmt.Errorf("onioncrypt: null keygen: %w", err)
	}
	return KeyPair{Public: PublicKey(k), Private: PrivateKey(k)}, nil
}

// Seal tags the plaintext with the recipient key and pads to ECIES size.
func (Null) Seal(_ io.Reader, pub PublicKey, plaintext []byte) ([]byte, error) {
	if len(pub) != x25519KeySize {
		return nil, ErrBadKeySize
	}
	out := make([]byte, 0, x25519KeySize+gcmTagSize+len(plaintext))
	out = append(out, pub...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(plaintext)))
	out = append(out, make([]byte, gcmTagSize-4)...)
	return append(out, plaintext...), nil
}

// Open verifies the recipient tag and embedded length, then strips the
// header.
func (Null) Open(priv PrivateKey, ciphertext []byte) ([]byte, error) {
	if len(priv) != x25519KeySize {
		return nil, ErrBadKeySize
	}
	if len(ciphertext) < x25519KeySize+gcmTagSize {
		return nil, ErrDecrypt
	}
	if !bytes.Equal(ciphertext[:x25519KeySize], priv) {
		return nil, ErrDecrypt
	}
	pt := ciphertext[x25519KeySize+gcmTagSize:]
	if binary.BigEndian.Uint32(ciphertext[x25519KeySize:]) != uint32(len(pt)) {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// SealOverhead matches ECIES (48 bytes).
func (Null) SealOverhead() int { return x25519KeySize + gcmTagSize }

// NewSymKey draws 32 random bytes.
func (Null) NewSymKey(r io.Reader) ([]byte, error) {
	key := make([]byte, SymKeySize)
	if _, err := io.ReadFull(r, key); err != nil {
		return nil, fmt.Errorf("onioncrypt: null symmetric key: %w", err)
	}
	return key, nil
}

// SymSeal prefixes a key fingerprint and the plaintext length, matching
// the ECIES layer size.
func (Null) SymSeal(_ io.Reader, key, plaintext []byte) ([]byte, error) {
	if len(key) != SymKeySize {
		return nil, ErrBadKeySize
	}
	const hdr = gcmNonceSize + gcmTagSize
	out := make([]byte, 0, hdr+len(plaintext))
	out = append(out, key[:hdr-4]...)
	out = binary.BigEndian.AppendUint32(out, uint32(len(plaintext)))
	return append(out, plaintext...), nil
}

// SymOpen verifies the key fingerprint and embedded length, then strips
// the header.
func (Null) SymOpen(key, ciphertext []byte) ([]byte, error) {
	if len(key) != SymKeySize {
		return nil, ErrBadKeySize
	}
	const hdr = gcmNonceSize + gcmTagSize
	if len(ciphertext) < hdr {
		return nil, ErrDecrypt
	}
	if !bytes.Equal(ciphertext[:hdr-4], key[:hdr-4]) {
		return nil, ErrDecrypt
	}
	pt := ciphertext[hdr:]
	if binary.BigEndian.Uint32(ciphertext[hdr-4:]) != uint32(len(pt)) {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// SymOverhead matches ECIES (28 bytes).
func (Null) SymOverhead() int { return gcmNonceSize + gcmTagSize }
