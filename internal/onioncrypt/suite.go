// Package onioncrypt provides the cryptographic primitives for onion
// construction: a PKI-style asymmetric seal (encrypt to a node's public
// key, §4 "the system relies on a PKI") and symmetric payload layers
// (§4.2 "we eliminate the need to perform asymmetric encryption on
// payload due to the symmetric keys").
//
// Two interchangeable Suites are provided:
//
//   - ECIES: real cryptography from the standard library — X25519 key
//     agreement (crypto/ecdh), SHA-256 key derivation, and AES-GCM.
//     Used by the examples and anywhere genuine confidentiality matters.
//   - Null: a structural stand-in with identical on-the-wire overheads
//     but no arithmetic, for large-scale simulations where the paper's
//     metrics (latency, bandwidth, resilience) do not depend on actual
//     ciphertext. Wrong-key opens still fail, so protocol bugs surface.
//
// Both suites draw randomness from an injected io.Reader so simulations
// stay deterministic.
package onioncrypt

import (
	"errors"
	"io"
)

// SymKeySize is the size in bytes of symmetric keys handed out by both
// suites (AES-256).
const SymKeySize = 32

// Errors shared by suite implementations.
var (
	ErrDecrypt    = errors.New("onioncrypt: decryption failed")
	ErrBadKeySize = errors.New("onioncrypt: bad key size")
)

// PublicKey is a node's public key in its serialized form.
type PublicKey []byte

// PrivateKey is a node's private key in its serialized form.
type PrivateKey []byte

// KeyPair bundles a node's asymmetric keys.
type KeyPair struct {
	Public  PublicKey
	Private PrivateKey
}

// Suite is the pluggable cryptography used to build and peel onions.
// Implementations must be safe for concurrent use by independent
// simulations as long as each simulation supplies its own random source
// per call site.
type Suite interface {
	// Name identifies the suite ("ecies" or "null").
	Name() string

	// GenerateKeyPair creates a node key pair using randomness from r.
	GenerateKeyPair(r io.Reader) (KeyPair, error)

	// Seal encrypts plaintext to the holder of pub. Only the matching
	// private key can Open it.
	Seal(r io.Reader, pub PublicKey, plaintext []byte) ([]byte, error)

	// Open decrypts a sealed ciphertext with the private key.
	Open(priv PrivateKey, ciphertext []byte) ([]byte, error)

	// SealOverhead is the constant size difference between a sealed
	// ciphertext and its plaintext.
	SealOverhead() int

	// NewSymKey draws a fresh symmetric key.
	NewSymKey(r io.Reader) ([]byte, error)

	// SymSeal encrypts plaintext under a symmetric key (one payload
	// onion layer).
	SymSeal(r io.Reader, key, plaintext []byte) ([]byte, error)

	// SymOpen decrypts one symmetric layer.
	SymOpen(key, ciphertext []byte) ([]byte, error)

	// SymOverhead is the constant size difference added by SymSeal.
	SymOverhead() int
}
