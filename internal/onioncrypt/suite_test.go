package onioncrypt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func suites() []Suite { return []Suite{ECIES{}, Null{}} }

func rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestSealOpenRoundTrip(t *testing.T) {
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			r := rng(1)
			kp, err := s.GenerateKeyPair(r)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("onions have layers")
			ct, err := s.Seal(r, kp.Public, msg)
			if err != nil {
				t.Fatal(err)
			}
			if len(ct) != len(msg)+s.SealOverhead() {
				t.Fatalf("ciphertext %d bytes, want %d + overhead %d", len(ct), len(msg), s.SealOverhead())
			}
			pt, err := s.Open(kp.Private, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pt, msg) {
				t.Fatalf("round trip failed: %q", pt)
			}
		})
	}
}

func TestOpenWrongKeyFails(t *testing.T) {
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			r := rng(2)
			alice, _ := s.GenerateKeyPair(r)
			mallory, _ := s.GenerateKeyPair(r)
			ct, err := s.Seal(r, alice.Public, []byte("secret"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Open(mallory.Private, ct); err == nil {
				t.Fatal("wrong key opened the ciphertext")
			}
		})
	}
}

func TestOpenTruncatedFails(t *testing.T) {
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			r := rng(3)
			kp, _ := s.GenerateKeyPair(r)
			ct, _ := s.Seal(r, kp.Public, []byte("x"))
			for _, cut := range []int{0, 1, len(ct) / 2, len(ct) - 1} {
				if _, err := s.Open(kp.Private, ct[:cut]); err == nil {
					t.Fatalf("truncated ciphertext (%d bytes) opened", cut)
				}
			}
		})
	}
}

func TestECIESTamperDetected(t *testing.T) {
	s := ECIES{}
	r := rng(4)
	kp, _ := s.GenerateKeyPair(r)
	ct, _ := s.Seal(r, kp.Public, []byte("authenticated"))
	ct[len(ct)-1] ^= 1
	if _, err := s.Open(kp.Private, ct); err == nil {
		t.Fatal("tampered ciphertext opened")
	}
}

func TestSymRoundTrip(t *testing.T) {
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			r := rng(5)
			key, err := s.NewSymKey(r)
			if err != nil {
				t.Fatal(err)
			}
			msg := []byte("payload layer")
			ct, err := s.SymSeal(r, key, msg)
			if err != nil {
				t.Fatal(err)
			}
			if len(ct) != len(msg)+s.SymOverhead() {
				t.Fatalf("ciphertext %d bytes, want %d + %d", len(ct), len(msg), s.SymOverhead())
			}
			pt, err := s.SymOpen(key, ct)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(pt, msg) {
				t.Fatal("sym round trip failed")
			}
		})
	}
}

func TestSymWrongKeyFails(t *testing.T) {
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			r := rng(6)
			k1, _ := s.NewSymKey(r)
			k2, _ := s.NewSymKey(r)
			ct, _ := s.SymSeal(r, k1, []byte("layered"))
			if _, err := s.SymOpen(k2, ct); err == nil {
				t.Fatal("wrong symmetric key opened the layer")
			}
		})
	}
}

func TestSymBadKeySize(t *testing.T) {
	for _, s := range suites() {
		if _, err := s.SymSeal(rng(7), make([]byte, 7), []byte("x")); err == nil {
			t.Errorf("%s: short key accepted by SymSeal", s.Name())
		}
		if _, err := s.SymOpen(make([]byte, 7), make([]byte, 64)); err == nil {
			t.Errorf("%s: short key accepted by SymOpen", s.Name())
		}
	}
}

func TestOverheadsMatchAcrossSuites(t *testing.T) {
	// Bandwidth results measured with Null must transfer to ECIES, so
	// the structural overheads must be identical.
	e, n := ECIES{}, Null{}
	if e.SealOverhead() != n.SealOverhead() {
		t.Errorf("seal overhead: ecies %d != null %d", e.SealOverhead(), n.SealOverhead())
	}
	if e.SymOverhead() != n.SymOverhead() {
		t.Errorf("sym overhead: ecies %d != null %d", e.SymOverhead(), n.SymOverhead())
	}
}

func TestNestedLayersBothSuites(t *testing.T) {
	// Build a 5-layer symmetric onion and peel it — the payload path of
	// §4.2 in miniature.
	for _, s := range suites() {
		t.Run(s.Name(), func(t *testing.T) {
			r := rng(8)
			const layers = 5
			keys := make([][]byte, layers)
			for i := range keys {
				keys[i], _ = s.NewSymKey(r)
			}
			msg := []byte("innermost")
			ct := msg
			for i := layers - 1; i >= 0; i-- {
				var err error
				ct, err = s.SymSeal(r, keys[i], ct)
				if err != nil {
					t.Fatal(err)
				}
			}
			if want := len(msg) + layers*s.SymOverhead(); len(ct) != want {
				t.Fatalf("onion size %d, want %d", len(ct), want)
			}
			for i := 0; i < layers; i++ {
				var err error
				ct, err = s.SymOpen(keys[i], ct)
				if err != nil {
					t.Fatalf("peeling layer %d: %v", i, err)
				}
			}
			if !bytes.Equal(ct, msg) {
				t.Fatal("peeled onion != message")
			}
		})
	}
}

func TestQuickNullRoundTrip(t *testing.T) {
	s := Null{}
	f := func(seed int64, msg []byte) bool {
		r := rng(seed)
		kp, err := s.GenerateKeyPair(r)
		if err != nil {
			return false
		}
		ct, err := s.Seal(r, kp.Public, msg)
		if err != nil {
			return false
		}
		pt, err := s.Open(kp.Private, ct)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeterministicKeygen(t *testing.T) {
	for _, s := range suites() {
		a, _ := s.GenerateKeyPair(rng(99))
		b, _ := s.GenerateKeyPair(rng(99))
		if !bytes.Equal(a.Public, b.Public) {
			t.Errorf("%s: keygen not deterministic for a fixed seed", s.Name())
		}
	}
}

func BenchmarkECIESSeal(b *testing.B) {
	s := ECIES{}
	r := rng(1)
	kp, _ := s.GenerateKeyPair(r)
	msg := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(r, kp.Public, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNullSeal(b *testing.B) {
	s := Null{}
	r := rng(1)
	kp, _ := s.GenerateKeyPair(r)
	msg := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(r, kp.Public, msg); err != nil {
			b.Fatal(err)
		}
	}
}
