// Package perfbench runs the repository's headline performance
// benchmarks from a regular binary (via testing.Benchmark) and reads,
// writes, and compares the machine-readable reports that
// cmd/anonbench's -bench-json mode produces.
//
// The committed baseline lives at BENCH_PR9.json in the repository
// root; CI regenerates a report on every push and fails when any gated
// metric regresses by more than the tolerance. Gating direction is
// encoded in the metric name suffix: ".mbps", ".events_per_sec",
// ".speedup" and ".parallel_efficiency" are higher-is-better,
// ".allocs_per_op" is lower-is-better. The "sim.shard." scaling
// metrics are additionally compared only between reports from hosts
// with equal num_cpu, and the absolute >=3x K=8 speedup requirement
// (ScalingGate) applies only on 8+-CPU hosts. Entries under Info
// (wall-clock times and machine facts) are recorded but never gated —
// they vary with host load in ways throughput-per-op does not.
package perfbench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"resilientmix/internal/churn"
	"resilientmix/internal/erasure"
	"resilientmix/internal/shardworld"
	"resilientmix/internal/sim"
)

// SchemaVersion identifies the report layout; bump on incompatible
// changes so stale baselines fail loudly instead of gating nonsense.
const SchemaVersion = 1

// Report is the machine-readable benchmark summary.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	GoOS          string `json:"goos"`
	GoArch        string `json:"goarch"`
	NumCPU        int    `json:"num_cpu"`

	// Metrics are gated by Compare. Keys end in ".mbps",
	// ".events_per_sec" (higher-better) or ".allocs_per_op"
	// (lower-better).
	Metrics map[string]float64 `json:"metrics"`

	// Info holds ungated context: wall-clock seconds for quick-mode
	// experiment runs and anything else useful for a human reading the
	// file, but too host-dependent to gate.
	Info map[string]float64 `json:"info,omitempty"`
}

// benchShapes mirrors internal/erasure's bench_test.go: the same
// (m, n) codes and message size, so `go test -bench` and the JSON
// report measure the same workload.
var benchShapes = []struct{ m, n int }{
	{4, 8},
	{5, 20},
	{16, 32},
}

const benchMsgLen = 4 * 1024

func benchMsg() []byte {
	msg := make([]byte, benchMsgLen)
	for i := range msg {
		msg[i] = byte(i * 131)
	}
	return msg
}

// Run executes the headline micro-benchmarks — erasure encode/decode
// throughput per (m, n) shape, the simulation engine's event loop, and
// the sharded engine's scaling curve at K = 1, 2, 4, 8 (capped at
// maxShards; 0 means the full curve) — and returns a fresh report. It
// takes on the order of tens of seconds.
func Run(maxShards int) *Report {
	r := &Report{
		SchemaVersion: SchemaVersion,
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Metrics:       make(map[string]float64),
		Info:          make(map[string]float64),
	}
	msg := benchMsg()

	for _, s := range benchShapes {
		code, err := erasure.New(s.m, s.n)
		if err != nil {
			panic(err) // shapes are compile-time constants
		}
		shape := fmt.Sprintf("m%d_n%d", s.m, s.n)

		enc := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(benchMsgLen)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := code.Split(msg); err != nil {
					b.Fatal(err)
				}
			}
		})
		r.Metrics["erasure.encode."+shape+".mbps"] = mbps(enc)
		r.Metrics["erasure.encode."+shape+".allocs_per_op"] = float64(enc.AllocsPerOp())

		segs, err := code.Split(msg)
		if err != nil {
			panic(err)
		}
		parity := segs[s.n-s.m:]
		dec := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(benchMsgLen)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := code.Reconstruct(parity); err != nil {
					b.Fatal(err)
				}
			}
		})
		r.Metrics["erasure.decode_nonsys."+shape+".mbps"] = mbps(dec)
		r.Metrics["erasure.decode_nonsys."+shape+".allocs_per_op"] = float64(dec.AllocsPerOp())
	}

	// Systematic fast path, one representative shape.
	{
		code, err := erasure.New(5, 20)
		if err != nil {
			panic(err)
		}
		segs, err := code.Split(msg)
		if err != nil {
			panic(err)
		}
		sys := testing.Benchmark(func(b *testing.B) {
			b.SetBytes(benchMsgLen)
			for i := 0; i < b.N; i++ {
				if _, err := code.Reconstruct(segs[:5]); err != nil {
					b.Fatal(err)
				}
			}
		})
		r.Metrics["erasure.decode_sys.m5_n20.mbps"] = mbps(sys)
	}

	// Engine event loop: schedule + run in batches, the netsim
	// steady-state pattern. ops/sec counts scheduled events executed.
	eng := testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1)
		fn := func() {}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Schedule(sim.Time(i%1000)*sim.Millisecond, fn)
			if i%1024 == 1023 {
				e.RunAll()
			}
		}
		e.RunAll()
	})
	r.Metrics["sim.engine.events_per_sec"] = float64(eng.N) / eng.T.Seconds()
	r.Metrics["sim.engine.schedule.allocs_per_op"] = float64(eng.AllocsPerOp())

	// Sharded engine scaling: the same churned message-plane world at
	// K = 1, 2, 4, 8 shards. The sim.shard.* metrics only mean
	// anything relative to a baseline from a machine with the same CPU
	// count (the report records num_cpu; Compare skips them on a
	// mismatch), and the absolute >=3x speedup gate applies only on
	// hosts with at least 8 CPUs — see ScalingGate.
	if maxShards <= 0 {
		maxShards = ShardCounts[len(ShardCounts)-1]
	}
	var k1 float64
	for _, k := range ShardCounts {
		if k > maxShards && k != 1 {
			continue
		}
		eps := shardEventsPerSec(k)
		r.Metrics[fmt.Sprintf("sim.shard.k%d.events_per_sec", k)] = eps
		if k == 1 {
			k1 = eps
		}
	}
	if k8, ok := r.Metrics["sim.shard.k8.events_per_sec"]; ok && k1 > 0 {
		r.Metrics["sim.shard.k8.speedup"] = k8 / k1
		r.Metrics["sim.shard.k8.parallel_efficiency"] = k8 / k1 / 8
	}
	r.Info["info.shard.gomaxprocs"] = float64(runtime.GOMAXPROCS(0))
	r.Info["info.shard.bench_nodes"] = shardBenchNodes

	return r
}

// ShardCounts are the shard-scaling benchmark points.
var ShardCounts = []int{1, 2, 4, 8}

const (
	shardBenchNodes    = 512
	shardBenchHorizon  = 4 * sim.Minute
	shardBenchInterval = 500 * sim.Millisecond
	shardBenchReps     = 3
)

// shardEventsPerSec runs the canonical sharded scenario (churn plus
// random-peer traffic, no tracer) at the given shard count and returns
// the best executed-events-per-wall-second over a few repetitions —
// max, not mean, because the quantity being measured is engine
// capacity, and interference only ever subtracts from it.
func shardEventsPerSec(k int) float64 {
	best := 0.0
	for rep := 0; rep < shardBenchReps; rep++ {
		w, err := shardworld.New(shardworld.Config{
			Nodes:           shardBenchNodes,
			Shards:          k,
			Seed:            99,
			Lifetime:        churn.DefaultLifetime(),
			TrafficInterval: shardBenchInterval,
		})
		if err != nil {
			panic(err) // config is compile-time constant
		}
		start := time.Now()
		w.Run(shardBenchHorizon)
		if el := time.Since(start).Seconds(); el > 0 {
			if v := float64(w.Cluster.Executed()) / el; v > best {
				best = v
			}
		}
	}
	return best
}

// MinSpeedupK8 is the absolute multi-core scaling requirement: on a
// host with at least 8 CPUs, the K=8 sharded engine must run the
// scenario at least this many times faster than K=1.
const MinSpeedupK8 = 3.0

// ScalingGate enforces MinSpeedupK8 on reports produced by hosts that
// can actually demonstrate 8-way parallelism. On hosts with fewer than
// 8 CPUs the speedup is recorded but not gated — a 1-CPU laptop cannot
// fail a parallel-scaling requirement it cannot exercise.
func ScalingGate(r *Report) error {
	if r.NumCPU < 8 {
		return nil
	}
	s, ok := r.Metrics["sim.shard.k8.speedup"]
	if !ok {
		return fmt.Errorf("perfbench: host has %d CPUs but the report carries no sim.shard.k8.speedup metric", r.NumCPU)
	}
	if s < MinSpeedupK8 {
		return fmt.Errorf("perfbench: K=8 speedup %.2fx below the required %.1fx on a %d-CPU host", s, MinSpeedupK8, r.NumCPU)
	}
	return nil
}

func mbps(res testing.BenchmarkResult) float64 {
	if res.T <= 0 {
		return 0
	}
	return float64(res.Bytes) * float64(res.N) / res.T.Seconds() / 1e6
}

// AddWallTime records an ungated wall-clock measurement under
// "info.<name>.wall_seconds".
func (r *Report) AddWallTime(name string, d time.Duration) {
	if r.Info == nil {
		r.Info = make(map[string]float64)
	}
	r.Info["info."+name+".wall_seconds"] = d.Seconds()
}

// WriteFile writes the report as indented JSON (keys sorted by
// encoding/json's map ordering) with a trailing newline.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report written by WriteFile.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("perfbench: parsing %s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("perfbench: %s has schema %d, this binary expects %d — regenerate the baseline", path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// Regression describes one gated metric that moved past tolerance in
// the losing direction.
type Regression struct {
	Metric   string
	Baseline float64
	Current  float64
}

func (g Regression) String() string {
	return fmt.Sprintf("%s: baseline %.3f, current %.3f", g.Metric, g.Baseline, g.Current)
}

// lowerBetter reports the gating direction for a metric name.
func lowerBetter(name string) bool { return strings.HasSuffix(name, ".allocs_per_op") }

// Compare gates current against baseline. A higher-better metric fails
// when current < baseline*(1-tolerance); a lower-better metric fails
// when current > baseline*(1+tolerance) — which for a zero-alloc
// baseline means any allocation at all. A metric present in the
// baseline but missing from current also fails (a silently dropped
// benchmark must not pass the gate). Metrics new in current are
// ignored until the baseline is refreshed.
//
// The "sim.shard." parallel-scaling metrics are compared only when the
// two reports come from hosts with the same CPU count: a speedup
// measured on 8 cores and one measured on 1 core are different
// quantities, and gating one against the other would be noise. The
// reports' num_cpu field exists precisely so this check is possible.
func Compare(baseline, current *Report, tolerance float64) []Regression {
	var regs []Regression
	keys := make([]string, 0, len(baseline.Metrics))
	for k := range baseline.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	sameCPU := baseline.NumCPU == current.NumCPU
	for _, k := range keys {
		if strings.HasPrefix(k, "sim.shard.") && !sameCPU {
			continue
		}
		base := baseline.Metrics[k]
		cur, ok := current.Metrics[k]
		if !ok {
			regs = append(regs, Regression{Metric: k + " (missing from current run)", Baseline: base, Current: 0})
			continue
		}
		if lowerBetter(k) {
			if cur > base*(1+tolerance) && cur > base {
				regs = append(regs, Regression{Metric: k, Baseline: base, Current: cur})
			}
		} else {
			if cur < base*(1-tolerance) {
				regs = append(regs, Regression{Metric: k, Baseline: base, Current: cur})
			}
		}
	}
	return regs
}
