package perfbench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func report(metrics map[string]float64) *Report {
	return &Report{SchemaVersion: SchemaVersion, Metrics: metrics}
}

func TestCompareDirections(t *testing.T) {
	base := report(map[string]float64{
		"erasure.encode.m4_n8.mbps":          1000,
		"sim.engine.events_per_sec":          1e7,
		"sim.engine.schedule.allocs_per_op":  0,
		"erasure.encode.m4_n8.allocs_per_op": 2,
	})

	// Everything within tolerance: throughput down 10%, allocs equal.
	ok := report(map[string]float64{
		"erasure.encode.m4_n8.mbps":          900,
		"sim.engine.events_per_sec":          1e7,
		"sim.engine.schedule.allocs_per_op":  0,
		"erasure.encode.m4_n8.allocs_per_op": 2,
	})
	if regs := Compare(base, ok, 0.20); len(regs) != 0 {
		t.Fatalf("within-tolerance run flagged: %v", regs)
	}

	// Throughput down 30% must fail; a zero-alloc baseline must fail on
	// any allocation at all.
	bad := report(map[string]float64{
		"erasure.encode.m4_n8.mbps":          700,
		"sim.engine.events_per_sec":          1e7,
		"sim.engine.schedule.allocs_per_op":  1,
		"erasure.encode.m4_n8.allocs_per_op": 2,
	})
	regs := Compare(base, bad, 0.20)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions %v, want 2 (mbps drop + new alloc)", len(regs), regs)
	}

	// Higher throughput and fewer allocs than baseline are improvements,
	// never regressions.
	better := report(map[string]float64{
		"erasure.encode.m4_n8.mbps":          2000,
		"sim.engine.events_per_sec":          2e7,
		"sim.engine.schedule.allocs_per_op":  0,
		"erasure.encode.m4_n8.allocs_per_op": 0,
	})
	if regs := Compare(base, better, 0.20); len(regs) != 0 {
		t.Fatalf("improvement flagged as regression: %v", regs)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base := report(map[string]float64{"erasure.encode.m4_n8.mbps": 1000})
	cur := report(map[string]float64{})
	regs := Compare(base, cur, 0.20)
	if len(regs) != 1 || !strings.Contains(regs[0].Metric, "missing") {
		t.Fatalf("dropped benchmark not flagged: %v", regs)
	}
	// New metrics in current are fine until the baseline is refreshed.
	cur2 := report(map[string]float64{
		"erasure.encode.m4_n8.mbps": 1000,
		"brand.new.metric.mbps":     5,
	})
	if regs := Compare(base, cur2, 0.20); len(regs) != 0 {
		t.Fatalf("new metric flagged: %v", regs)
	}
}

func TestCompareSkipsShardMetricsAcrossCPUCounts(t *testing.T) {
	base := report(map[string]float64{
		"erasure.encode.m4_n8.mbps":   1000,
		"sim.shard.k8.events_per_sec": 8e6,
		"sim.shard.k8.speedup":        4,
		"sim.shard.k1.events_per_sec": 2e6,
		"sim.engine.events_per_sec":   1e7,
	})
	base.NumCPU = 8
	// A 1-CPU host reruns the suite: its scaling numbers are a
	// different quantity and must not gate against the 8-CPU baseline,
	// but the machine-independent metrics still do.
	cur := report(map[string]float64{
		"erasure.encode.m4_n8.mbps":   950,
		"sim.shard.k8.events_per_sec": 1e6, // would fail on the same CPU count
		"sim.shard.k8.speedup":        0.9,
		"sim.shard.k1.events_per_sec": 1.5e6,
		"sim.engine.events_per_sec":   1e7,
	})
	cur.NumCPU = 1
	if regs := Compare(base, cur, 0.20); len(regs) != 0 {
		t.Fatalf("shard metrics gated across differing CPU counts: %v", regs)
	}
	// Same CPU count: the scaling regression must be caught.
	cur.NumCPU = 8
	regs := Compare(base, cur, 0.20)
	if len(regs) != 3 {
		t.Fatalf("got %v, want the three sim.shard regressions", regs)
	}
	for _, g := range regs {
		if !strings.HasPrefix(g.Metric, "sim.shard.") {
			t.Fatalf("unexpected regression %v", g)
		}
	}
}

func TestScalingGate(t *testing.T) {
	// Fewer than 8 CPUs: recorded, never gated.
	small := report(map[string]float64{"sim.shard.k8.speedup": 0.8})
	small.NumCPU = 4
	if err := ScalingGate(small); err != nil {
		t.Fatalf("gated a %d-CPU host: %v", small.NumCPU, err)
	}
	// 8 CPUs with a healthy speedup passes.
	good := report(map[string]float64{"sim.shard.k8.speedup": 3.4})
	good.NumCPU = 8
	if err := ScalingGate(good); err != nil {
		t.Fatalf("healthy speedup gated: %v", err)
	}
	// 8 CPUs below the bar fails.
	slow := report(map[string]float64{"sim.shard.k8.speedup": 2.1})
	slow.NumCPU = 8
	if err := ScalingGate(slow); err == nil {
		t.Fatal("2.1x speedup on an 8-CPU host passed the 3x gate")
	}
	// 8 CPUs with the metric silently missing must not pass.
	missing := report(map[string]float64{})
	missing.NumCPU = 16
	if err := ScalingGate(missing); err == nil {
		t.Fatal("missing speedup metric passed the gate")
	}
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	r := report(map[string]float64{"erasure.encode.m4_n8.mbps": 1234.5})
	r.GoOS, r.GoArch, r.NumCPU = "linux", "amd64", 8
	r.AddWallTime("quick_all", 0) // zero duration still records the key
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics["erasure.encode.m4_n8.mbps"] != 1234.5 {
		t.Fatalf("metric lost in round trip: %v", got.Metrics)
	}
	if _, ok := got.Info["info.quick_all.wall_seconds"]; !ok {
		t.Fatalf("info key lost in round trip: %v", got.Info)
	}
}

func TestReadFileRejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, []byte(`{"schema_version": 99, "metrics": {}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
}
