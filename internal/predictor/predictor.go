// Package predictor implements the node liveness predictor of §4.9.
//
// Given the Pareto lifetime model, the conditional probability that a
// node is still alive after being silent for Δt_since, having been
// observed alive for Δt_alive, is
//
//	p = (Δt_alive / (Δt_alive + Δt_since))^α            (Equation 1)
//
// Since p is monotone in q = Δt_alive / (Δt_alive + Δt_since)
// (Equation 2), mix choice ranks nodes by q directly and never needs α.
// When the liveness information is stale, the local clock gap
// (t_now − t_last) is added to Δt_since (Equation 3).
package predictor

import (
	"math"

	"resilientmix/internal/sim"
)

// Info is a node's liveness record as maintained in a membership cache.
type Info struct {
	// AliveFor is Δt_alive: how long the node had been alive when the
	// information was produced.
	AliveFor sim.Time
	// Since is Δt_since: how stale the information already was when it
	// reached us.
	Since sim.Time
	// LastHeard is t_last: our local timestamp when we stored it.
	LastHeard sim.Time
	// Down marks a node positively known to have left (OneHop-style
	// membership disseminates explicit leave events; plain gossip only
	// lets entries go stale). A down node's predictor is zero.
	Down bool
}

// Q computes the liveness predictor of Equation 3:
//
//	q = Δt_alive / (Δt_alive + Δt_since + (t_now − t_last))
//
// Q returns 0 for a node never observed alive (AliveFor <= 0) or known
// to be down, and clamps a clock anomaly (now < LastHeard) to zero
// elapsed time.
func Q(info Info, now sim.Time) float64 {
	if info.AliveFor <= 0 || info.Down {
		return 0
	}
	elapsed := now - info.LastHeard
	if elapsed < 0 {
		elapsed = 0
	}
	since := info.Since
	if since < 0 {
		since = 0
	}
	denom := info.AliveFor + since + elapsed
	return float64(info.AliveFor) / float64(denom)
}

// EffectiveSince returns the Δt_since value to piggyback onto a gossip
// message at time now: the stored Δt_since plus the local staleness
// (t_now − t_last). See §4.9 ("Whenever a node needs to piggyback node
// C's liveness information...").
func EffectiveSince(info Info, now sim.Time) sim.Time {
	elapsed := now - info.LastHeard
	if elapsed < 0 {
		elapsed = 0
	}
	since := info.Since
	if since < 0 {
		since = 0
	}
	return since + elapsed
}

// AliveProb converts the predictor q into the probability of Equation 1,
// p = q^α, for a Pareto lifetime distribution with shape alpha.
func AliveProb(q, alpha float64) float64 {
	if q <= 0 {
		return 0
	}
	if q >= 1 {
		return 1
	}
	return math.Pow(q, alpha)
}
