package predictor

import (
	"math"
	"testing"
	"testing/quick"

	"resilientmix/internal/sim"
)

func TestQFreshInformation(t *testing.T) {
	// A node heard from directly right now: q = alive/(alive+0+0) = 1.
	info := Info{AliveFor: 100 * sim.Second, Since: 0, LastHeard: 50 * sim.Second}
	if q := Q(info, 50*sim.Second); q != 1 {
		t.Fatalf("q = %g, want 1 for fresh info", q)
	}
}

func TestQEquation3(t *testing.T) {
	// alive=1000s, since=200s, heard 300s ago: q = 1000/1500.
	info := Info{AliveFor: 1000 * sim.Second, Since: 200 * sim.Second, LastHeard: 0}
	q := Q(info, 300*sim.Second)
	if math.Abs(q-1000.0/1500.0) > 1e-12 {
		t.Fatalf("q = %g, want %g", q, 1000.0/1500.0)
	}
}

func TestQNeverAlive(t *testing.T) {
	if Q(Info{AliveFor: 0}, sim.Hour) != 0 {
		t.Error("q should be 0 for a node never observed alive")
	}
	if Q(Info{AliveFor: -sim.Second}, sim.Hour) != 0 {
		t.Error("q should be 0 for negative AliveFor")
	}
}

func TestQClockAnomalies(t *testing.T) {
	info := Info{AliveFor: sim.Hour, Since: 0, LastHeard: 2 * sim.Hour}
	if q := Q(info, sim.Hour); q != 1 { // now < LastHeard clamps
		t.Fatalf("q = %g with clamped negative elapsed, want 1", q)
	}
	info = Info{AliveFor: sim.Hour, Since: -sim.Minute, LastHeard: 0}
	if q := Q(info, 0); q != 1 {
		t.Fatalf("q = %g with clamped negative since, want 1", q)
	}
}

func TestQMonotonicity(t *testing.T) {
	// q increases with AliveFor, decreases with Since and staleness.
	f := func(rawAlive, rawSince, rawElapsed uint16) bool {
		alive := sim.Time(rawAlive) + 1
		since := sim.Time(rawSince)
		elapsed := sim.Time(rawElapsed)
		base := Info{AliveFor: alive, Since: since, LastHeard: 0}
		now := elapsed
		q := Q(base, now)
		older := Q(Info{AliveFor: alive * 2, Since: since, LastHeard: 0}, now)
		staler := Q(Info{AliveFor: alive, Since: since + 100, LastHeard: 0}, now)
		later := Q(base, now+100)
		return older >= q && staler <= q && later <= q
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQRange(t *testing.T) {
	f := func(rawAlive, rawSince, rawLast, rawNow uint32) bool {
		info := Info{
			AliveFor:  sim.Time(rawAlive),
			Since:     sim.Time(rawSince),
			LastHeard: sim.Time(rawLast),
		}
		q := Q(info, sim.Time(rawNow))
		return q >= 0 && q <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEffectiveSince(t *testing.T) {
	info := Info{AliveFor: sim.Hour, Since: 30 * sim.Second, LastHeard: 100 * sim.Second}
	if got := EffectiveSince(info, 160*sim.Second); got != 90*sim.Second {
		t.Fatalf("EffectiveSince = %v, want 90s", got)
	}
	// Clock anomaly clamps.
	if got := EffectiveSince(info, 0); got != 30*sim.Second {
		t.Fatalf("EffectiveSince = %v, want 30s", got)
	}
	info.Since = -sim.Second
	if got := EffectiveSince(info, 100*sim.Second); got != 0 {
		t.Fatalf("EffectiveSince with negative stored since = %v, want 0", got)
	}
}

func TestAliveProb(t *testing.T) {
	if AliveProb(0, 0.83) != 0 || AliveProb(-1, 0.83) != 0 {
		t.Error("q<=0 should give p=0")
	}
	if AliveProb(1, 0.83) != 1 || AliveProb(2, 0.83) != 1 {
		t.Error("q>=1 should give p=1")
	}
	q := 0.5
	if got := AliveProb(q, 0.83); math.Abs(got-math.Pow(0.5, 0.83)) > 1e-12 {
		t.Fatalf("AliveProb = %g", got)
	}
	// p is monotone in q (the property that lets mix choice skip alpha).
	if AliveProb(0.8, 0.83) <= AliveProb(0.4, 0.83) {
		t.Error("AliveProb not monotone in q")
	}
}
