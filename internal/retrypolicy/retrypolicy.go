// Package retrypolicy is the repo's one retry/backoff implementation:
// capped exponential backoff with uniform jitter and context-aware
// sleeping. Cluster scrapes, livenet dials, and path-setup retries all
// share it, so tuning (or auditing) retry behavior happens in exactly
// one place.
//
// The jitter matters operationally: when a node goes down, every
// client that failed against it retries. Without jitter they retry in
// lockstep and the recovering node takes the whole herd at once;
// spreading each delay uniformly over [d·(1−j), d·(1+j)] breaks the
// synchronization.
package retrypolicy

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// Policy describes one retry schedule. The zero value retries nothing
// (a single attempt, no delays); fill in the fields or start from a
// named preset.
type Policy struct {
	// Attempts is the total attempt budget (first try included).
	// Values below 1 behave as 1.
	Attempts int
	// Backoff is the delay before the second attempt; it doubles per
	// retry up to BackoffCap.
	Backoff time.Duration
	// BackoffCap bounds the exponential growth. Zero means uncapped.
	BackoffCap time.Duration
	// Jitter spreads each delay uniformly over [d·(1−j), d·(1+j)].
	// 0 disables; values above 1 clamp to 1.
	Jitter float64
	// Rand supplies the jitter randomness; nil uses the global
	// math/rand source. Deterministic tests inject their own.
	Rand *rand.Rand
}

// attempts returns the effective attempt budget.
func (p Policy) attempts() int {
	if p.Attempts < 1 {
		return 1
	}
	return p.Attempts
}

// base returns the un-jittered delay before attempt i (0-based; the
// first retry waits before attempt 1). Attempt 0 never waits.
func (p Policy) base(attempt int) time.Duration {
	if attempt <= 0 || p.Backoff <= 0 {
		return 0
	}
	d := p.Backoff
	for i := 1; i < attempt; i++ {
		d *= 2
		if p.BackoffCap > 0 && d >= p.BackoffCap {
			return p.BackoffCap
		}
	}
	if p.BackoffCap > 0 && d > p.BackoffCap {
		d = p.BackoffCap
	}
	return d
}

// Delay returns the jittered delay to sleep before attempt i
// (0-based). Attempt 0 is immediate.
func (p Policy) Delay(attempt int) time.Duration {
	return p.jitter(p.base(attempt))
}

// jitter spreads one delay by the policy's Jitter factor.
func (p Policy) jitter(d time.Duration) time.Duration {
	j := p.Jitter
	if j <= 0 || d <= 0 {
		return d
	}
	if j > 1 {
		j = 1
	}
	lo := float64(d) * (1 - j)
	var u float64
	if p.Rand != nil {
		u = p.Rand.Float64()
	} else {
		u = rand.Float64()
	}
	return time.Duration(lo + u*(2*j*float64(d)))
}

// permanentError wraps an error to stop the retry loop immediately.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent marks an error as non-retryable: Do returns it (unwrapped)
// without consuming further attempts. Use it for authoritative answers
// — a 503 from a readiness probe is a verdict, not an outage.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// Do runs fn up to p.Attempts times, sleeping the jittered backoff
// between attempts. It stops early when fn succeeds, when fn returns a
// Permanent error, or when ctx is done (the context error wins over
// the last attempt error so deadline causes are not masked). The
// context is also consulted during backoff sleeps, so a canceled
// caller never waits out a delay.
func (p Policy) Do(ctx context.Context, fn func(ctx context.Context) error) error {
	attempts := p.attempts()
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if err := sleep(ctx, p.Delay(i)); err != nil {
				return err
			}
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		err := fn(ctx)
		if err == nil {
			return nil
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
	}
	return lastErr
}

// sleep waits for d or until ctx is done, whichever comes first.
func sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
