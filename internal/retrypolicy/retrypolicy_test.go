package retrypolicy

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestBaseDelaySchedule(t *testing.T) {
	p := Policy{Attempts: 6, Backoff: 100 * time.Millisecond, BackoffCap: time.Second}
	want := []time.Duration{
		0,                      // attempt 0: immediate
		100 * time.Millisecond, // first retry
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
	}
	for i, w := range want {
		if got := p.base(i); got != w {
			t.Errorf("base(%d) = %v, want %v", i, got, w)
		}
	}
	// Far past the cap the delay must stay pinned (no overflow from
	// repeated doubling).
	if got := p.base(40); got != time.Second {
		t.Errorf("base(40) = %v, want cap", got)
	}
}

func TestJitterZeroLeavesDelayUnchanged(t *testing.T) {
	p := Policy{Backoff: 250 * time.Millisecond}
	if got := p.Delay(1); got != 250*time.Millisecond {
		t.Errorf("jitter 0: Delay(1) = %v, want 250ms", got)
	}
}

func TestJitterSpreadsWithinBand(t *testing.T) {
	p := Policy{
		Backoff: 100 * time.Millisecond,
		Jitter:  0.5,
		Rand:    rand.New(rand.NewSource(1)),
	}
	lo, hi := 50*time.Millisecond, 150*time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 200; i++ {
		d := p.Delay(1)
		if d < lo || d > hi {
			t.Fatalf("jittered delay %v outside [%v, %v]", d, lo, hi)
		}
		seen[d] = true
	}
	if len(seen) < 10 {
		t.Errorf("jitter produced only %d distinct delays; not spreading", len(seen))
	}
}

func TestJitterAboveOneClamps(t *testing.T) {
	p := Policy{Backoff: 100 * time.Millisecond, Jitter: 5, Rand: rand.New(rand.NewSource(2))}
	for i := 0; i < 100; i++ {
		if d := p.Delay(1); d < 0 || d > 200*time.Millisecond {
			t.Fatalf("clamped jitter delay %v outside [0, 200ms]", d)
		}
	}
}

func TestDoRetriesUntilSuccess(t *testing.T) {
	p := Policy{Attempts: 4, Backoff: time.Microsecond}
	calls := 0
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want nil after 3", err, calls)
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	p := Policy{Attempts: 3, Backoff: time.Microsecond}
	calls := 0
	sentinel := errors.New("still down")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) || calls != 3 {
		t.Fatalf("Do = %v after %d calls, want sentinel after exactly 3", err, calls)
	}
}

func TestDoZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	Policy{}.Do(context.Background(), func(context.Context) error {
		calls++
		return errors.New("x")
	})
	if calls != 1 {
		t.Fatalf("zero policy made %d attempts, want 1", calls)
	}
}

func TestDoPermanentStopsImmediately(t *testing.T) {
	p := Policy{Attempts: 5, Backoff: time.Microsecond}
	calls := 0
	verdict := errors.New("503 not ready")
	err := p.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(verdict)
	})
	if !errors.Is(err, verdict) || calls != 1 {
		t.Fatalf("Do = %v after %d calls, want verdict after 1", err, calls)
	}
	if Permanent(nil) != nil {
		t.Error("Permanent(nil) != nil")
	}
}

func TestDoHonorsContextCancelDuringBackoff(t *testing.T) {
	p := Policy{Attempts: 3, Backoff: time.Hour}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	started := make(chan struct{}, 3)
	go func() {
		done <- p.Do(ctx, func(context.Context) error {
			started <- struct{}{}
			return errors.New("transient")
		})
	}()
	<-started
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Do = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancel; backoff sleep ignores the context")
	}
}

func TestDoExpiredContextBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Policy{Attempts: 3}.Do(ctx, func(context.Context) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) || calls != 0 {
		t.Fatalf("Do = %v after %d calls, want Canceled after 0", err, calls)
	}
}
