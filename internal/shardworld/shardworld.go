// Package shardworld assembles a complete sharded message-plane
// simulation: a latency topology, a shard cluster with conservative
// lookahead derived from that topology, a sharded network, Pareto
// churn, and a background traffic workload in which every node
// periodically messages a random peer. It is the scenario behind
// `anonsim -shards`, the cross-shard determinism property test, and
// the shard scaling benchmarks.
//
// Scale switches the topology representation: dense Matrix latencies
// up to Config.DenseLimit nodes (exact cross-shard minimum, tightest
// lookahead), the O(n)-memory Geo embedding beyond it, which is what
// makes 100k+ node sweeps fit in memory.
package shardworld

import (
	"fmt"
	"sync"

	"resilientmix/internal/churn"
	"resilientmix/internal/netsim"
	"resilientmix/internal/obs"
	"resilientmix/internal/sim"
	"resilientmix/internal/sim/shard"
	"resilientmix/internal/stats"
	"resilientmix/internal/topology"
)

// Config describes a sharded world.
type Config struct {
	// Nodes is the network size.
	Nodes int
	// Shards is the parallel shard count K; 1 reproduces the
	// sequential schedule on a single goroutine.
	Shards int
	// Seed derives the topology, every per-node RNG stream, and hence
	// the entire history.
	Seed int64
	// MeanRTT is the topology's target mean round-trip time
	// (default topology.DefaultMeanRTT).
	MeanRTT sim.Time
	// LossRate is random link loss in [0, 1].
	LossRate float64
	// Lifetime, when non-nil, enables churn with this session-time
	// distribution; Downtime defaults to Lifetime.
	Lifetime stats.Dist
	Downtime stats.Dist
	// Pinned nodes never churn.
	Pinned []netsim.NodeID
	// TrafficInterval is the mean per-node send interval
	// (default 10 s); each node's actual gaps are uniform in
	// [interval/2, 3*interval/2), drawn from its own stream.
	TrafficInterval sim.Time
	// MsgSize is the payload size in bytes (default 1024).
	MsgSize int
	// DenseLimit is the largest node count simulated on a dense
	// latency matrix (default 2048); larger worlds use the O(n) Geo
	// embedding.
	DenseLimit int
	// Tracer, when non-nil, receives the canonical merged trace.
	Tracer obs.Tracer
}

// World is a running sharded scenario.
type World struct {
	Cluster   *shard.Cluster
	Net       *netsim.ShardedNetwork
	Churn     *churn.ShardedDriver // nil without a lifetime distribution
	Topology  topology.Latency
	Lookahead sim.Time

	msgSize  int
	interval sim.Time
	// pool recycles payload buffers across messages. Cross-shard
	// messages are the hot path: the payload travels through the SPSC
	// mailbox inside the scheduled closure and is returned here on
	// delivery (or abandoned to the GC on loss).
	pool sync.Pool
}

// New builds the world and schedules its initial events; call Run to
// execute.
func New(cfg Config) (*World, error) {
	if cfg.MeanRTT == 0 {
		cfg.MeanRTT = topology.DefaultMeanRTT
	}
	if cfg.TrafficInterval == 0 {
		cfg.TrafficInterval = 10 * sim.Second
	}
	if cfg.MsgSize == 0 {
		cfg.MsgSize = 1024
	}
	if cfg.DenseLimit == 0 {
		cfg.DenseLimit = 2048
	}

	var lat topology.Latency
	var err error
	if cfg.Nodes <= cfg.DenseLimit {
		lat, err = topology.Generate(cfg.Nodes, cfg.MeanRTT, cfg.Seed)
	} else {
		lat, err = topology.NewGeo(cfg.Nodes, cfg.MeanRTT, cfg.Seed)
	}
	if err != nil {
		return nil, err
	}

	assign := shard.BlockAssign(cfg.Nodes, cfg.Shards)
	la := topology.LookaheadFor(lat, assign)
	cl, err := shard.New(shard.Config{
		Nodes:     cfg.Nodes,
		Shards:    cfg.Shards,
		Seed:      cfg.Seed,
		Lookahead: la,
		Tracer:    cfg.Tracer,
	})
	if err != nil {
		return nil, err
	}
	net, err := netsim.NewSharded(cl, lat)
	if err != nil {
		return nil, err
	}
	net.SetLossRate(cfg.LossRate)

	w := &World{
		Cluster:   cl,
		Net:       net,
		Topology:  lat,
		Lookahead: la,
		msgSize:   cfg.MsgSize,
		interval:  cfg.TrafficInterval,
	}
	w.pool.New = func() any { return make([]byte, cfg.MsgSize) }

	for i := 0; i < cfg.Nodes; i++ {
		id := netsim.NodeID(i)
		net.SetHandler(id, w.receive)
	}
	if cfg.Lifetime != nil {
		w.Churn, err = churn.NewShardedDriver(net, cfg.Lifetime, cfg.Downtime, cfg.Pinned...)
		if err != nil {
			return nil, err
		}
		if err := w.Churn.Start(); err != nil {
			return nil, err
		}
	}
	// Stagger first sends uniformly over one interval, per-node stream.
	for i := 0; i < cfg.Nodes; i++ {
		p := cl.Proc(i)
		p.Schedule(sim.Time(p.RNG().Int63n(int64(w.interval))), w.tick)
	}
	return w, nil
}

// tick sends one message to a random peer and reschedules itself. A
// down node skips the wire (Send drops at the sender) but keeps
// ticking, so its timeline — and its RNG stream — advance identically
// whether or not churn took it down.
func (w *World) tick(p *shard.Proc) {
	n := w.Cluster.Nodes()
	dst := p.RNG().Intn(n - 1)
	if dst >= p.ID() {
		dst++
	}
	buf := w.pool.Get().([]byte)
	w.Net.Send(p, netsim.NodeID(dst), netsim.Message{Payload: buf, Size: w.msgSize})
	gap := w.interval/2 + sim.Time(p.RNG().Int63n(int64(w.interval)))
	p.Schedule(gap, w.tick)
}

// receive recycles the payload buffer.
func (w *World) receive(p *shard.Proc, from netsim.NodeID, msg netsim.Message) {
	if buf, ok := msg.Payload.([]byte); ok {
		w.pool.Put(buf)
	}
}

// Run advances the world to the given horizon.
func (w *World) Run(until sim.Time) { w.Cluster.Run(until) }

// Summary is a one-line accounting of a finished run.
func (w *World) Summary() string {
	st := w.Net.Stats()
	return fmt.Sprintf("events=%d sent=%d delivered=%d dropped=%d bytes=%d up=%d/%d shards=%d lookahead=%v",
		w.Cluster.Executed(), st.Sent, st.Delivered,
		st.DroppedSender+st.DroppedReceiver+st.DroppedLoss, st.Bytes,
		w.Net.UpCount(), w.Cluster.Nodes(), w.Cluster.Shards(), w.Lookahead)
}
