// Package sim provides a deterministic discrete-event simulation engine:
// a virtual clock with microsecond resolution, a binary-heap event queue
// with stable FIFO ordering for simultaneous events, and a seeded random
// number generator. It is the substrate standing in for p2psim in the
// paper's evaluation (§6.1) — see DESIGN.md, substitution 1.
//
// An Engine is single-goroutine by design: all scheduled callbacks run
// sequentially from Run, so handlers never need locks. Parallelism in
// the experiment harnesses comes from running many independent Engines,
// one per goroutine.
package sim

import (
	"fmt"
	"math/rand"
	"time"

	"resilientmix/internal/obs"
)

// Time is a point in virtual time, in microseconds since the start of
// the simulation.
type Time int64

// Common durations in virtual-time units.
const (
	Microsecond Time = 1
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// FromDuration converts a wall-clock duration to virtual time.
func FromDuration(d time.Duration) Time { return Time(d.Microseconds()) }

// FromSeconds converts seconds (possibly fractional) to virtual time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// Seconds returns t expressed in seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as seconds with millisecond precision.
func (t Time) String() string { return fmt.Sprintf("%.3fs", t.Seconds()) }

// event is a scheduled callback. Events are stored by value in the
// queue: scheduling neither boxes the event through an interface nor
// allocates a queue node, so the steady-state cost of Schedule is an
// amortized slice append.
type event struct {
	at     Time
	seq    uint64 // tie-break: FIFO among simultaneous events
	fn     func()
	cancel *bool // non-nil for cancelable timers (lazy deletion)
}

// eventQueue is a value-based binary min-heap ordered by (at, seq).
// (at, seq) is a strict total order — seq is unique — so the pop
// sequence is identical to the old container/heap implementation and
// seeded histories are preserved byte for byte.
type eventQueue []event

func eventBefore(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// push appends ev and sifts it up, moving the hole rather than
// swapping: one write per level plus the final placement.
func (q *eventQueue) push(ev event) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(&ev, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	*q = h
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // release fn/cancel references for the GC
	h = h[:n]
	*q = h
	// Sift last down from the root, again moving the hole.
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventBefore(&h[r], &h[c]) {
			c = r
		}
		if !eventBefore(&h[c], &last) {
			break
		}
		h[i] = h[c]
		i = c
	}
	if n > 0 {
		h[i] = last
	}
	return top
}

// siftDown restores the heap property below index i, assuming both
// subtrees of i are already heaps. It is the building block compaction
// uses to re-heapify in O(n).
func (q eventQueue) siftDown(i int) {
	n := len(q)
	ev := q[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventBefore(&q[r], &q[c]) {
			c = r
		}
		if !eventBefore(&q[c], &ev) {
			break
		}
		q[i] = q[c]
		i = c
	}
	q[i] = ev
}

// Engine is a deterministic discrete-event simulator.
type Engine struct {
	now      Time
	seq      uint64
	queue    eventQueue
	rng      *rand.Rand
	stopped  bool
	ran      uint64 // events executed, for diagnostics
	canceled int    // canceled entries still occupying queue slots

	// tracer, when non-nil, receives EventScheduled/EventFired for
	// every queue operation. The nil default costs one branch per
	// event — the whole price of disabled observability.
	tracer obs.Tracer
}

// NewEngine returns an engine whose RNG is seeded with seed. Two engines
// with the same seed and the same scheduled work produce identical
// histories.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's random source. All simulation randomness must
// flow through it to preserve determinism.
func (e *Engine) RNG() *rand.Rand { return e.rng }

// SetTracer installs (or, with nil, removes) the engine's trace sink.
// Tracing never consumes engine randomness, so enabling it cannot
// change a seeded history.
func (e *Engine) SetTracer(t obs.Tracer) { e.tracer = t }

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Executed returns the number of events that have run.
func (e *Engine) Executed() uint64 { return e.ran }

// Schedule runs fn after delay. A negative delay is treated as zero.
// Events scheduled for the same instant run in scheduling order.
func (e *Engine) Schedule(delay Time, fn func()) {
	if delay < 0 {
		delay = 0
	}
	e.schedule(e.now+delay, fn, nil, "Schedule")
}

// ScheduleAt runs fn at the given absolute virtual time. Times in the
// past are clamped to now.
func (e *Engine) ScheduleAt(at Time, fn func()) {
	e.schedule(at, fn, nil, "ScheduleAt")
}

// schedule is the single enqueue path: clamp, number, trace, push.
// cancel, when non-nil, marks the event for lazy deletion — the run
// loop still pops and counts it (so seeded histories and the executed
// counter match the always-fire behaviour exactly) but skips fn. op is
// the public entry point's name, so a nil-callback panic names the call
// the user actually made.
func (e *Engine) schedule(at Time, fn func(), cancel *bool, op string) {
	if fn == nil {
		panic("sim: " + op + " with nil callback")
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	if e.tracer != nil {
		e.tracer.Emit(obs.Event{
			Type: obs.EventScheduled, At: int64(e.now),
			Node: -1, Peer: -1, ID: e.seq, Seq: int64(at),
			Slot: -1, Hop: -1,
		})
	}
	e.queue.push(event{at: at, seq: e.seq, fn: fn, cancel: cancel})
}

// Timer is a cancelable scheduled callback.
type Timer struct {
	eng      *Engine
	canceled *bool
}

// Cancel stops the timer; the callback will not run. Cancel after firing
// is a no-op. The queue entry is lazily deleted; when canceled entries
// come to dominate the queue the engine compacts them away (see
// Engine.compact).
func (t *Timer) Cancel() {
	if t == nil || t.canceled == nil || *t.canceled {
		return
	}
	*t.canceled = true
	if t.eng != nil {
		t.eng.noteCanceled()
	}
}

// noteCanceled accounts a newly canceled timer and compacts the queue
// when canceled entries exceed half of it. The counter can overcount
// when a timer is canceled after it already fired (its entry is gone);
// compaction recounts from the queue itself, so drift only ever costs a
// sweep, never correctness.
func (e *Engine) noteCanceled() {
	e.canceled++
	// Sweep once canceled entries exceed half the queue. Each sweep
	// removes over half the entries, so the amortized cost per cancel
	// is O(1) even under mass cancellation. The strict inequality means
	// a queue whose canceled entries are exactly half (e.g. one of two)
	// keeps the cheap lazy-deletion path.
	if e.canceled*2 > len(e.queue) {
		e.compact()
	}
}

// compact removes every canceled entry from the queue in one sweep and
// re-heapifies. Surviving events keep their (at, seq) keys, and the pop
// order depends only on that strict total order, so seeded histories of
// the callbacks that actually run are unchanged. Compacted entries are
// never popped, so — unlike lazily skipped ones — they do not count
// toward Executed() and emit no EventFired trace record; compaction is
// triggered by deterministic queue state, so equal seeds still produce
// byte-identical traces.
func (e *Engine) compact() {
	q := e.queue[:0]
	for _, ev := range e.queue {
		if ev.cancel != nil && *ev.cancel {
			continue
		}
		q = append(q, ev)
	}
	// Release dropped fn/cancel references for the GC.
	for i := len(q); i < len(e.queue); i++ {
		e.queue[i] = event{}
	}
	e.queue = q
	e.canceled = 0
	for i := len(q)/2 - 1; i >= 0; i-- {
		q.siftDown(i)
	}
}

// After schedules fn after delay and returns a cancelable Timer.
// A canceled timer is lazily deleted: its queue entry is skipped by the
// run loop when its time arrives rather than wrapping fn in a
// check-and-bail closure.
func (e *Engine) After(delay Time, fn func()) *Timer {
	if delay < 0 {
		delay = 0
	}
	canceled := new(bool)
	e.schedule(e.now+delay, fn, canceled, "After")
	return &Timer{eng: e, canceled: canceled}
}

// Every schedules fn at t = start, start+interval, ... until the
// returned Timer is canceled or the engine stops.
func (e *Engine) Every(start, interval Time, fn func()) *Timer {
	if interval <= 0 {
		panic("sim: Every requires a positive interval")
	}
	if fn == nil {
		panic("sim: Every with nil callback")
	}
	if start < 0 {
		start = 0
	}
	canceled := new(bool)
	var tick func()
	tick = func() {
		fn()
		// Re-check after fn: canceling inside the callback must stop
		// the rescheduling chain, not just mark the next entry dead.
		if !*canceled {
			e.schedule(e.now+interval, tick, canceled, "Every")
		}
	}
	e.schedule(e.now+start, tick, canceled, "Every")
	return &Timer{eng: e, canceled: canceled}
}

// Stop halts the run loop after the current event finishes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in time order until the queue empties, the clock
// passes `until`, or Stop is called. It returns the virtual time at
// which it stopped. Events scheduled exactly at `until` still run.
func (e *Engine) Run(until Time) Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > until {
			e.now = until
			return e.now
		}
		next := e.queue.pop()
		e.now = next.at
		e.ran++
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{
				Type: obs.EventFired, At: int64(next.at),
				Node: -1, Peer: -1, ID: next.seq, Slot: -1, Hop: -1,
			})
		}
		// A canceled timer that escaped compaction is still popped,
		// traced, and counted — the pre-lazy-deletion implementation ran
		// a no-op closure here, and seeded histories must not notice the
		// difference — but its callback is skipped.
		if next.cancel == nil || !*next.cancel {
			next.fn()
		} else if e.canceled > 0 {
			e.canceled--
		}
	}
	if e.now < until && len(e.queue) == 0 {
		e.now = until
	}
	return e.now
}

// RunAll executes events until the queue is empty or Stop is called.
func (e *Engine) RunAll() Time {
	e.stopped = false
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue.pop()
		e.now = next.at
		e.ran++
		if e.tracer != nil {
			e.tracer.Emit(obs.Event{
				Type: obs.EventFired, At: int64(next.at),
				Node: -1, Peer: -1, ID: next.seq, Slot: -1, Hop: -1,
			})
		}
		if next.cancel == nil || !*next.cancel {
			next.fn()
		} else if e.canceled > 0 {
			e.canceled--
		}
	}
	return e.now
}
