package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*Second, func() { got = append(got, 3) })
	e.Schedule(1*Second, func() { got = append(got, 1) })
	e.Schedule(2*Second, func() { got = append(got, 2) })
	e.RunAll()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("execution order = %v, want [1 2 3]", got)
	}
	if e.Now() != 3*Second {
		t.Fatalf("final time = %v, want 3s", e.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { got = append(got, i) })
	}
	e.RunAll()
	for i, v := range got {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", got)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	var ran []Time
	for i := 1; i <= 5; i++ {
		at := Time(i) * Second
		e.ScheduleAt(at, func() { ran = append(ran, at) })
	}
	e.Run(3 * Second)
	if len(ran) != 3 {
		t.Fatalf("Run(3s) executed %d events, want 3 (boundary inclusive)", len(ran))
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", e.Pending())
	}
	e.Run(10 * Second)
	if len(ran) != 5 {
		t.Fatalf("second Run executed %d total, want 5", len(ran))
	}
	if e.Now() != 10*Second {
		t.Fatalf("Now() after draining = %v, want until=10s", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var depth int
	var fire func()
	fire = func() {
		depth++
		if depth < 100 {
			e.Schedule(Millisecond, fire)
		}
	}
	e.Schedule(0, fire)
	e.RunAll()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99*Millisecond {
		t.Fatalf("Now() = %v, want 99ms", e.Now())
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	e := NewEngine(1)
	var when Time
	e.Schedule(Second, func() {
		e.ScheduleAt(0, func() { when = e.Now() }) // in the past
	})
	e.RunAll()
	if when != Second {
		t.Fatalf("past-scheduled event ran at %v, want clamped to 1s", when)
	}
}

func TestNegativeDelayClamps(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(-5*Second, func() { ran = true })
	e.RunAll()
	if !ran || e.Now() != 0 {
		t.Fatalf("negative delay: ran=%v now=%v", ran, e.Now())
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	var count int
	for i := 0; i < 10; i++ {
		e.Schedule(Time(i)*Second, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.RunAll()
	if count != 4 {
		t.Fatalf("count = %d, want 4 after Stop", count)
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending() = %d, want 6", e.Pending())
	}
}

func TestTimerCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.After(Second, func() { fired = true })
	e.Schedule(500*Millisecond, func() { tm.Cancel() })
	e.RunAll()
	if fired {
		t.Fatal("canceled timer fired")
	}
	// Cancel after the queue drained must be a no-op.
	tm.Cancel()
	var nilTimer *Timer
	nilTimer.Cancel() // must not panic
}

func TestEvery(t *testing.T) {
	e := NewEngine(1)
	var ticks []Time
	var tm *Timer
	tm = e.Every(Second, 2*Second, func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 3 {
			tm.Cancel()
		}
	})
	e.Run(100 * Second)
	want := []Time{Second, 3 * Second, 5 * Second}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestEveryInvalidInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	NewEngine(1).Every(0, 0, func() {})
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func() []int64 {
		e := NewEngine(42)
		var out []int64
		e.Every(0, 10*Millisecond, func() {
			out = append(out, int64(e.RNG().Intn(1000)))
			if len(out) >= 50 {
				e.Stop()
			}
		})
		e.RunAll()
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if FromDuration(1500*time.Millisecond) != 1500*Millisecond {
		t.Error("FromDuration broken")
	}
	if FromSeconds(2.5) != 2500*Millisecond {
		t.Error("FromSeconds broken")
	}
	if (90 * Second).Seconds() != 90 {
		t.Error("Seconds broken")
	}
	if Hour != 3600*Second || Minute != 60*Second {
		t.Error("duration constants inconsistent")
	}
	if s := (1500 * Millisecond).String(); s != "1.500s" {
		t.Errorf("String() = %q", s)
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	NewEngine(1).Schedule(0, nil)
}

// TestNilCallbackPanicNamesEntryPoint checks that each public scheduling
// entry point reports itself — not an internal helper — when handed a
// nil callback.
func TestNilCallbackPanicNamesEntryPoint(t *testing.T) {
	cases := []struct {
		want string
		call func(e *Engine)
	}{
		{"sim: Schedule with nil callback", func(e *Engine) { e.Schedule(0, nil) }},
		{"sim: ScheduleAt with nil callback", func(e *Engine) { e.ScheduleAt(0, nil) }},
		{"sim: After with nil callback", func(e *Engine) { e.After(0, nil) }},
		{"sim: Every with nil callback", func(e *Engine) { e.Every(0, Second, nil) }},
	}
	for _, tc := range cases {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s: no panic", tc.want)
				}
				if msg, ok := r.(string); !ok || msg != tc.want {
					t.Fatalf("panic message = %v, want %q", r, tc.want)
				}
			}()
			tc.call(NewEngine(1))
		}()
	}
}

// TestCancelCompaction checks heap hygiene: once canceled timers exceed
// half the queue, they are swept out, so Pending() shrinks immediately
// instead of waiting for every dead deadline to arrive.
func TestCancelCompaction(t *testing.T) {
	e := NewEngine(1)
	const nTimers = 100
	timers := make([]*Timer, nTimers)
	for i := range timers {
		timers[i] = e.After(Time(i+1)*Hour, func() { t.Fatal("canceled timer fired") })
	}
	e.Schedule(Second, func() {})
	if got := e.Pending(); got != nTimers+1 {
		t.Fatalf("Pending() = %d, want %d", got, nTimers+1)
	}
	for _, tm := range timers {
		tm.Cancel()
	}
	// 100 canceled of 101 queued is far past the half-queue trigger.
	// Compaction cascades as cancels keep arriving; at most one canceled
	// entry (exactly half of a 2-element queue, below the strict
	// trigger) may survive on the cheap lazy path.
	if got := e.Pending(); got > 2 {
		t.Fatalf("Pending() after mass cancel = %d, want <= 2 (compaction should have swept canceled entries)", got)
	}
	e.RunAll()
	// The one survivor (if any) pops lazily and counts as executed,
	// exactly like pre-compaction lazy deletion.
	if e.Executed() > 2 {
		t.Fatalf("Executed() = %d, want <= 2 (compacted entries never pop)", e.Executed())
	}
}

// TestCompactionPreservesHistory checks that compaction is invisible to
// the surviving callbacks: a run where many interleaved timers are
// canceled (forcing compaction) executes the exact same callback
// sequence, at the same times, as a run where those timers were never
// scheduled at all.
func TestCompactionPreservesHistory(t *testing.T) {
	type firing struct {
		label int
		at    Time
	}
	run := func(withTimers bool) []firing {
		e := NewEngine(7)
		var got []firing
		for i := 0; i < 50; i++ {
			i := i
			e.Schedule(Time(i)*100*Millisecond, func() { got = append(got, firing{i, e.Now()}) })
		}
		if withTimers {
			timers := make([]*Timer, 200)
			for j := range timers {
				timers[j] = e.After(Time(j+1)*Minute, func() { t.Fatal("canceled timer fired") })
			}
			// Cancel from inside the run, mid-history, so compaction
			// happens while survivors are still pending.
			e.Schedule(250*Millisecond, func() {
				for _, tm := range timers {
					tm.Cancel()
				}
			})
		}
		e.Run(10 * Second)
		if withTimers {
			// Strip the cancel helper's own slot: it appends nothing,
			// so got is already comparable.
			_ = withTimers
		}
		return got
	}
	with, without := run(true), run(false)
	if len(with) != len(without) {
		t.Fatalf("callback counts differ: %d with canceled timers, %d without", len(with), len(without))
	}
	for i := range with {
		if with[i] != without[i] {
			t.Fatalf("histories diverge at %d: %+v vs %+v", i, with[i], without[i])
		}
	}
}

// TestCancelAfterFireSelfHeals checks the overcount path: canceling a
// timer that already fired bumps the canceled counter with no matching
// queue entry; a later compaction must recount from the queue and not
// remove or miscount live events.
func TestCancelAfterFireSelfHeals(t *testing.T) {
	e := NewEngine(1)
	fired := make([]*Timer, 64)
	for i := range fired {
		fired[i] = e.After(Time(i)*Millisecond, func() {})
	}
	e.Run(100 * Millisecond)
	live := 0
	e.Schedule(Hour, func() { live++ })
	for _, tm := range fired {
		tm.Cancel() // all already fired: pure overcount
	}
	if got := e.Pending(); got != 1 {
		t.Fatalf("Pending() = %d, want 1 (live event must survive recount)", got)
	}
	e.RunAll()
	if live != 1 {
		t.Fatalf("live event ran %d times, want 1", live)
	}
}

func TestExecutedCounter(t *testing.T) {
	e := NewEngine(1)
	for i := 0; i < 7; i++ {
		e.Schedule(Time(i), func() {})
	}
	e.RunAll()
	if e.Executed() != 7 {
		t.Fatalf("Executed() = %d, want 7", e.Executed())
	}
}

func TestCanceledTimerCountsAsExecuted(t *testing.T) {
	// Lazy deletion must be invisible to observers: a canceled timer is
	// still popped at its scheduled time and counted by Executed(), so
	// traces and report counters match the pre-lazy-deletion engine.
	e := NewEngine(1)
	fired := false
	tm := e.After(2*Second, func() { fired = true })
	e.Schedule(Second, func() { tm.Cancel() })
	e.Schedule(3*Second, func() {})
	e.RunAll()
	if fired {
		t.Fatal("canceled timer fired")
	}
	if e.Executed() != 3 {
		t.Fatalf("Executed() = %d, want 3 (canceled event still counted)", e.Executed())
	}
	if e.Now() != 3*Second {
		t.Fatalf("Now() = %v, want 3s", e.Now())
	}
}

func TestEveryCancelFromOutside(t *testing.T) {
	e := NewEngine(1)
	var ticks int
	tm := e.Every(Second, Second, func() { ticks++ })
	e.Schedule(3500*Millisecond, func() { tm.Cancel() })
	e.Run(10 * Second)
	if ticks != 3 {
		t.Fatalf("ticks = %d, want 3 (t=1s,2s,3s before cancel at 3.5s)", ticks)
	}
}

func TestScheduleZeroAlloc(t *testing.T) {
	// The value-based heap must not allocate per event once the queue's
	// backing array has grown: no *event box, no interface conversion.
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 1024; i++ { // pre-grow the backing array
		e.Schedule(Time(i), fn)
	}
	e.RunAll()
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(Second, fn)
		e.RunAll()
	})
	if allocs != 0 {
		t.Fatalf("Schedule+Run allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	b.ReportAllocs()
	e := NewEngine(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(Time(i%1000)*Millisecond, func() {})
		if i%1024 == 1023 {
			e.RunAll()
		}
	}
	e.RunAll()
}
