package shard

// nodeEvent is one scheduled callback in a shard's queue. Unlike the
// single-engine event, its ordering key (at, origin, oseq) is derived
// from the *scheduling node*, not from a per-engine counter: origin is
// the node that called Schedule and oseq is that node's monotonic
// counter. Because a node always runs on exactly one shard for any
// shard count K, the key assigned to an event is identical for every
// K — which is what makes the merged execution history K-invariant.
type nodeEvent struct {
	at     Time
	origin int32 // scheduling node
	node   int32 // destination node (whose Proc the callback receives)
	oseq   uint64
	fn     func(*Proc)
}

func eventBefore(a, b *nodeEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	return a.oseq < b.oseq
}

// eventHeap is a value-based binary min-heap ordered by the strict
// total order (at, origin, oseq) — the same hole-moving sift used by
// the single-engine queue, so push/pop do one write per level and
// never box events through an interface.
type eventHeap []nodeEvent

func (q *eventHeap) push(ev nodeEvent) {
	h := append(*q, ev)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !eventBefore(&ev, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = ev
	*q = h
}

func (q *eventHeap) pop() nodeEvent {
	h := *q
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nodeEvent{} // release the fn reference for the GC
	h = h[:n]
	*q = h
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && eventBefore(&h[r], &h[c]) {
			c = r
		}
		if !eventBefore(&h[c], &last) {
			break
		}
		h[i] = h[c]
		i = c
	}
	if n > 0 {
		h[i] = last
	}
	return top
}
