package shard

// sm64 is a splitmix64 random source. The default math/rand source
// carries ~4.9 KB of state; at 100k–1M nodes one source per node would
// dominate memory, so each node gets an 8-byte splitmix64 stream
// instead. Streams are decorrelated by seeding each node's state
// through the splitmix64 finalizer (see Cluster construction), so no
// two nodes start at nearby points of the underlying +gamma sequence.
type sm64 struct{ state uint64 }

const sm64Gamma = 0x9E3779B97F4A7C15

func (s *sm64) Uint64() uint64 {
	s.state += sm64Gamma
	z := s.state
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

func (s *sm64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *sm64) Seed(v int64) { s.state = mix64(uint64(v)) }

// mix64 is the splitmix64 finalizer, used to scatter per-node seeds.
func mix64(z uint64) uint64 {
	z += sm64Gamma
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}
