// Package shard is the multi-core counterpart of the single-goroutine
// sim engine: a conservatively synchronized parallel discrete-event
// simulator. Nodes are partitioned across K shards; each shard owns a
// value-based event heap, a virtual clock, and one splitmix64 RNG
// stream per node. Shards advance in lock-step windows [T, T+L) where
// the lookahead L is a lower bound on cross-shard one-way latency
// (topology.Latency.MinOneWay / MinCrossOneWay), so no event executed
// in a window can schedule work another shard would have had to run
// inside the same window. Cross-shard events travel through per-pair
// SPSC mailboxes that are written only during the execute phase and
// drained only during the barrier-separated drain phase — no locks on
// the event path.
//
// Determinism: every event carries the K-invariant key
// (at, origin node, per-origin seq). Cross-node scheduling requires a
// positive delay, so within one virtual timestamp only a node's own
// zero-delay events can appear, and they carry that node's own
// monotonically increasing seq — per-node execution order is therefore
// independent of K. Trace records are buffered per shard, tagged with
// the executing event's key, and merged at each window barrier in key
// order; window time-ranges are disjoint and increasing, so the
// concatenated trace is globally key-sorted and byte-identical for
// every K, which the trace-hash oracle enforces.
package shard

import (
	"fmt"
	"math/rand"
	"sync"

	"resilientmix/internal/obs"
	"resilientmix/internal/sim"
)

// Time re-exports the simulator's virtual time so shard callers read
// naturally alongside sim code.
type Time = sim.Time

// maxTime is the sentinel "no event pending" timestamp.
const maxTime = Time(1<<63 - 1)

// MaxNodes bounds the node count so the stable trace event id
// oseq<<21 | origin never collides.
const MaxNodes = 1 << 21

// Config describes a cluster.
type Config struct {
	// Nodes is the number of simulated nodes (1..MaxNodes).
	Nodes int
	// Shards is the number of parallel partitions K (1..Nodes). K=1
	// runs the identical code path with a single giant window.
	Shards int
	// Seed derives every per-node RNG stream.
	Seed int64
	// Lookahead is the conservative window width: a positive lower
	// bound on the delay of every cross-shard event. Required when
	// Shards > 1; derive it from topology.Latency.MinOneWay or, when
	// the assignment is known, the tighter MinCrossOneWay.
	Lookahead Time
	// Tracer, when non-nil, receives the canonical merged event
	// stream. Tracing never consumes simulation randomness.
	Tracer obs.Tracer
}

// BlockAssign returns the contiguous block shard assignment used by
// the cluster: node i belongs to shard i*K/N. Contiguous blocks keep
// each shard's hot per-node state (Proc structs, RNG states) in one
// cache-friendly range of the flat arrays.
func BlockAssign(nodes, shards int) []int32 {
	assign := make([]int32, nodes)
	for i := range assign {
		assign[i] = int32(i * shards / nodes)
	}
	return assign
}

// Proc is a node's handle into the cluster: every callback receives
// the Proc of the node it runs on, and all scheduling and randomness
// flow through it. Procs are stored in one flat array indexed by node
// id — the hot scheduling state (seq counter, RNG state pointer) of a
// shard's nodes is contiguous in memory.
type Proc struct {
	c    *Cluster
	s    *Shard
	id   int32
	seq  uint64 // per-origin-node event counter: the K-invariant tie-break
	rng  *rand.Rand
	data interface{} // per-node payload, owned by the node's shard
}

// ID returns the node id.
func (p *Proc) ID() int { return int(p.id) }

// Shard returns the index of the shard that owns this node — the slot
// to use for per-shard accounting (stats, counters) that is summed
// after the run.
func (p *Proc) Shard() int { return int(p.s.id) }

// Now returns the owning shard's virtual clock.
func (p *Proc) Now() Time { return p.s.now }

// RNG returns the node's private random stream. Draw order within a
// node is K-invariant because the node's events run in K-invariant
// order; never share a Proc's RNG across nodes.
func (p *Proc) RNG() *rand.Rand { return p.rng }

// Data returns the per-node payload set with SetData.
func (p *Proc) Data() interface{} { return p.data }

// SetData attaches an arbitrary per-node payload. Call it at setup
// time or from the node's own callbacks; the payload is owned by the
// node's shard and must not be shared mutably across nodes.
func (p *Proc) SetData(v interface{}) { p.data = v }

// Schedule runs fn on this node after delay (negative delays clamp to
// zero). Same-node events may have zero delay; they run later in the
// same timestamp because they carry a larger per-origin seq.
func (p *Proc) Schedule(delay Time, fn func(*Proc)) {
	p.scheduleOn(p.id, delay, fn, "Schedule")
}

// ScheduleNode runs fn on node dst after delay. Cross-node delays must
// be positive, and when dst lives on another shard the delay must be
// at least the cluster lookahead — the topology's minimum cross-shard
// latency guarantees that for message delivery; both are checked.
func (p *Proc) ScheduleNode(dst int, delay Time, fn func(*Proc)) {
	if dst < 0 || dst >= p.c.nodes {
		panic(fmt.Sprintf("shard: ScheduleNode to node %d of %d", dst, p.c.nodes))
	}
	p.scheduleOn(int32(dst), delay, fn, "ScheduleNode")
}

func (p *Proc) scheduleOn(dst int32, delay Time, fn func(*Proc), op string) {
	if fn == nil {
		panic("shard: " + op + " with nil callback")
	}
	c := p.c
	if dst != p.id {
		if delay <= 0 {
			panic(fmt.Sprintf("shard: %s from node %d to %d needs a positive delay, got %v",
				op, p.id, dst, delay))
		}
		if c.running && c.assign[dst] != p.s.id && delay < c.lookahead {
			panic(fmt.Sprintf("shard: %s from node %d to %d with delay %v below lookahead %v",
				op, p.id, dst, delay, c.lookahead))
		}
	} else if delay < 0 {
		delay = 0
	}
	at := p.s.now + delay
	p.seq++
	ev := nodeEvent{at: at, origin: p.id, node: dst, oseq: p.seq, fn: fn}
	if c.tracer != nil {
		p.s.emit(obs.Event{
			Type: obs.EventScheduled, At: int64(p.s.now),
			Node: -1, Peer: -1, ID: eventID(p.id, p.seq), Seq: int64(at),
			Slot: -1, Hop: -1,
		})
	}
	if ds := c.assign[dst]; ds != p.s.id && c.running {
		// Cross-shard: append to this shard's SPSC outbox for the
		// destination. Only the producer touches it during the execute
		// phase; the consumer drains it in the barrier-separated drain
		// phase, so no lock is needed.
		p.s.outbox[ds] = append(p.s.outbox[ds], ev)
	} else {
		// Same shard — or setup time, when everything is
		// single-threaded and pushing into any heap is safe.
		c.sh[ds].queue.push(ev)
	}
}

// Emit forwards a trace event through the cluster's canonical merge,
// tagged with the currently executing event's key so the merged stream
// is identical for every shard count.
func (p *Proc) Emit(ev obs.Event) { p.s.emit(ev) }

// eventID is the stable trace identifier for a scheduled event:
// oseq<<21 | origin. It is K-invariant (both components are) and
// unique while origin < MaxNodes.
func eventID(origin int32, oseq uint64) uint64 {
	return oseq<<21 | uint64(origin)
}

// traceRec is a buffered trace event plus the merge key of the
// execution context that emitted it.
type traceRec struct {
	at     Time
	origin int32
	sub    int32 // emission index within the executing event
	oseq   uint64
	ev     obs.Event
}

func recBefore(a, b *traceRec) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.origin != b.origin {
		return a.origin < b.origin
	}
	if a.oseq != b.oseq {
		return a.oseq < b.oseq
	}
	return a.sub < b.sub
}

// Shard owns a contiguous block of nodes: their event heap, virtual
// clock, and trace buffer. Exactly one goroutine runs a shard.
type Shard struct {
	c        *Cluster
	id       int32
	now      Time
	queue    eventHeap
	executed uint64
	// outbox[d] holds events for shard d scheduled during the current
	// execute phase. Producer-owned while executing, consumer-drained
	// at the next barrier; backing arrays are recycled between windows.
	outbox [][]nodeEvent
	trace  []traceRec

	// Key of the event currently executing, for trace tagging.
	curAt     Time
	curOrigin int32
	curOseq   uint64
	curSub    int32
}

func (s *Shard) emit(ev obs.Event) {
	c := s.c
	if c.tracer == nil {
		return
	}
	if !c.running {
		// Setup-time scheduling happens before workers exist and in
		// deterministic program order: emit straight to the sink.
		c.tracer.Emit(ev)
		return
	}
	s.trace = append(s.trace, traceRec{
		at: s.curAt, origin: s.curOrigin, oseq: s.curOseq, sub: s.curSub, ev: ev,
	})
	s.curSub++
}

// drain moves events out of every other shard's outbox for this shard
// into the local heap, in canonical (source shard, append seq) order.
// It runs strictly between barriers, when no shard is executing.
func (s *Shard) drain() {
	for _, src := range s.c.sh {
		if src == s {
			continue
		}
		box := src.outbox[s.id]
		for i := range box {
			s.queue.push(box[i])
			box[i] = nodeEvent{} // release the fn reference
		}
		src.outbox[s.id] = box[:0] // recycle the backing array
	}
	if len(s.queue) > 0 {
		s.c.minNext[s.id] = s.queue[0].at
	} else {
		s.c.minNext[s.id] = maxTime
	}
}

// execute runs every local event with at < window-end (and at most the
// run horizon). Events scheduled during the phase for this same shard
// and window execute too — the heap orders them by the K-invariant key.
func (s *Shard) execute() {
	c := s.c
	wend, until := c.wend, c.until
	traced := c.tracer != nil
	for len(s.queue) > 0 {
		at := s.queue[0].at
		if at >= wend || at > until {
			break
		}
		ev := s.queue.pop()
		s.now = ev.at
		s.executed++
		s.curAt, s.curOrigin, s.curOseq, s.curSub = ev.at, ev.origin, ev.oseq, 0
		if traced {
			s.emit(obs.Event{
				Type: obs.EventFired, At: int64(ev.at),
				Node: -1, Peer: -1, ID: eventID(ev.origin, ev.oseq),
				Slot: -1, Hop: -1,
			})
		}
		ev.fn(&c.procs[ev.node])
	}
	// An idle shard's clock is left where it is: scheduling only ever
	// happens while executing an event (which sets the clock to the
	// event's timestamp) or at setup time, so nothing reads a stale
	// clock. Run advances every clock to the horizon on exit.
}

// barrier is a reusable cyclic barrier with a leader action: the last
// goroutine to arrive runs fn (trace merge + window advance) while the
// others are parked, then everyone is released. The mutex/cond pair
// gives the happens-before edges that make the phase-separated
// lock-free structures (outboxes, minNext, trace buffers) race-free.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     uint64
	broken  bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await(leader func()) {
	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return
	}
	gen := b.gen
	b.arrived++
	if b.arrived == b.n {
		if leader != nil {
			leader()
		}
		b.arrived = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.broken {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// abort breaks the barrier so a panicking worker cannot strand its
// peers: current and future waiters return immediately and the
// workers then observe the recorded failure and exit.
func (b *barrier) abort() {
	b.mu.Lock()
	b.broken = true
	b.arrived = 0
	b.gen++
	b.mu.Unlock()
	b.cond.Broadcast()
}

// Cluster is a sharded simulation: K shards over N nodes advancing in
// conservative lock-step windows.
type Cluster struct {
	nodes     int
	shards    int
	lookahead Time
	tracer    obs.Tracer
	assign    []int32
	seeds     []sm64 // flat per-node RNG state, 8 bytes each
	procs     []Proc // flat per-node scheduling state, shard-contiguous
	sh        []*Shard
	bar       *barrier
	minNext   []Time // per-shard earliest pending timestamp, set in drain
	mergeIdx  []int
	wend      Time // current window end (exclusive)
	until     Time // run horizon (inclusive)
	running   bool
	done      bool
	failure   interface{} // first worker panic, re-raised from Run
}

// New builds a cluster. Shards > 1 requires a positive Lookahead.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes < 1 || cfg.Nodes > MaxNodes {
		return nil, fmt.Errorf("shard: need 1..%d nodes, got %d", MaxNodes, cfg.Nodes)
	}
	if cfg.Shards < 1 || cfg.Shards > cfg.Nodes {
		return nil, fmt.Errorf("shard: need 1..%d shards for %d nodes, got %d",
			cfg.Nodes, cfg.Nodes, cfg.Shards)
	}
	if cfg.Shards > 1 && cfg.Lookahead <= 0 {
		return nil, fmt.Errorf("shard: %d shards require a positive lookahead", cfg.Shards)
	}
	c := &Cluster{
		nodes:     cfg.Nodes,
		shards:    cfg.Shards,
		lookahead: cfg.Lookahead,
		tracer:    cfg.Tracer,
		assign:    BlockAssign(cfg.Nodes, cfg.Shards),
		seeds:     make([]sm64, cfg.Nodes),
		procs:     make([]Proc, cfg.Nodes),
		sh:        make([]*Shard, cfg.Shards),
		bar:       newBarrier(cfg.Shards),
		minNext:   make([]Time, cfg.Shards),
		mergeIdx:  make([]int, cfg.Shards),
	}
	for k := range c.sh {
		c.sh[k] = &Shard{c: c, id: int32(k), outbox: make([][]nodeEvent, cfg.Shards)}
	}
	base := mix64(uint64(cfg.Seed))
	for i := 0; i < cfg.Nodes; i++ {
		// Scatter each node's starting point through the finalizer so
		// streams are not simple shifts of one another.
		c.seeds[i] = sm64{state: mix64(base + uint64(i))}
		c.procs[i] = Proc{
			c:   c,
			s:   c.sh[c.assign[i]],
			id:  int32(i),
			rng: rand.New(&c.seeds[i]),
		}
	}
	return c, nil
}

// Nodes returns the node count.
func (c *Cluster) Nodes() int { return c.nodes }

// Shards returns the shard count K.
func (c *Cluster) Shards() int { return c.shards }

// Lookahead returns the conservative window width.
func (c *Cluster) Lookahead() Time { return c.lookahead }

// Assign returns the node→shard assignment. Callers must treat it as
// read-only.
func (c *Cluster) Assign() []int32 { return c.assign }

// ShardOf returns the shard owning the node.
func (c *Cluster) ShardOf(node int) int { return int(c.assign[node]) }

// Proc returns the node's handle, for setup-time scheduling and state
// attachment before Run.
func (c *Cluster) Proc(node int) *Proc { return &c.procs[node] }

// Executed returns the total number of events run across all shards.
func (c *Cluster) Executed() uint64 {
	var n uint64
	for _, s := range c.sh {
		n += s.executed
	}
	return n
}

// Pending returns the number of queued events across all shards,
// including undrained mailboxes.
func (c *Cluster) Pending() int {
	n := 0
	for _, s := range c.sh {
		n += len(s.queue)
		for _, box := range s.outbox {
			n += len(box)
		}
	}
	return n
}

// Now returns the cluster clock: the minimum of the shard clocks.
func (c *Cluster) Now() Time {
	min := c.sh[0].now
	for _, s := range c.sh[1:] {
		if s.now < min {
			min = s.now
		}
	}
	return min
}

// advance is the leader action run inside the window barrier: merge
// and flush the window's trace records in canonical key order, find
// the globally earliest pending event, and open the next window.
func (c *Cluster) advance() {
	c.flushTrace()
	min := maxTime
	for _, t := range c.minNext {
		if t < min {
			min = t
		}
	}
	if min == maxTime || min > c.until {
		c.done = true
		return
	}
	if c.shards == 1 {
		// One shard needs no synchronization: a single unbounded
		// window reproduces the sequential engine exactly.
		c.wend = maxTime
	} else if wend := min + c.lookahead; wend > min {
		c.wend = wend
	} else { // overflow
		c.wend = maxTime
	}
}

// flushTrace performs a K-way merge of the shards' window-local trace
// buffers in (at, origin, oseq, sub) order and emits them to the sink.
// Windows have disjoint, increasing time ranges, so emitting each
// window in key order yields a globally key-sorted — and therefore
// K-invariant — stream.
func (c *Cluster) flushTrace() {
	if c.tracer == nil {
		return
	}
	idx := c.mergeIdx
	for i := range idx {
		idx[i] = 0
	}
	for {
		var best *traceRec
		bi := -1
		for k, s := range c.sh {
			if idx[k] >= len(s.trace) {
				continue
			}
			if r := &s.trace[idx[k]]; best == nil || recBefore(r, best) {
				best, bi = r, k
			}
		}
		if bi < 0 {
			break
		}
		c.tracer.Emit(best.ev)
		idx[bi]++
	}
	for _, s := range c.sh {
		s.trace = s.trace[:0]
	}
}

// worker is one shard's loop: drain mailboxes, report the earliest
// pending timestamp, synchronize (the last arriver merges traces and
// opens the next window), execute the window, synchronize again so no
// shard drains mailboxes another shard is still filling.
func (c *Cluster) worker(s *Shard) {
	for {
		s.drain()
		c.bar.await(c.advance)
		if c.done || c.failure != nil {
			return
		}
		s.execute()
		c.bar.await(nil)
		if c.failure != nil {
			// A peer panicked mid-window. Returning before the next
			// drain keeps phase separation intact: no shard reads an
			// outbox a crashed peer may have been filling.
			return
		}
	}
}

// runWorker is the goroutine wrapper for K > 1: it converts a worker
// panic into a recorded failure plus a barrier break, so Run can
// re-raise it on the caller's goroutine instead of the process dying
// on an unjoinable worker (and peers deadlocking at the barrier).
func (c *Cluster) runWorker(s *Shard, wg *sync.WaitGroup) {
	defer wg.Done()
	defer func() {
		if r := recover(); r != nil {
			c.bar.mu.Lock()
			if c.failure == nil {
				c.failure = r
			}
			c.bar.mu.Unlock()
			c.bar.abort()
		}
	}()
	c.worker(s)
}

// Run executes events in lock-step windows until no event at or before
// `until` remains. Events exactly at `until` run. It returns `until`;
// shard clocks end at the horizon like the sequential engine's.
// Run may be called repeatedly with increasing horizons.
func (c *Cluster) Run(until Time) Time {
	if c.running {
		panic("shard: Run called reentrantly")
	}
	c.until = until
	c.done = false
	c.running = true
	if c.shards == 1 {
		// Single shard runs inline on the caller's goroutine; a panic
		// propagates directly, exactly like the sequential engine.
		c.worker(c.sh[0])
	} else {
		var wg sync.WaitGroup
		for _, s := range c.sh {
			wg.Add(1)
			go c.runWorker(s, &wg)
		}
		wg.Wait()
		if r := c.failure; r != nil {
			panic(r)
		}
	}
	c.running = false
	for _, s := range c.sh {
		if s.now < until {
			s.now = until
		}
	}
	return until
}
