package shard

import (
	"bytes"
	"strings"
	"testing"

	"resilientmix/internal/obs"
	"resilientmix/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, Shards: 1}); err == nil {
		t.Fatal("accepted 0 nodes")
	}
	if _, err := New(Config{Nodes: 4, Shards: 5, Lookahead: sim.Millisecond}); err == nil {
		t.Fatal("accepted more shards than nodes")
	}
	if _, err := New(Config{Nodes: 4, Shards: 2}); err == nil {
		t.Fatal("accepted multiple shards without a lookahead")
	}
	if _, err := New(Config{Nodes: 4, Shards: 1}); err != nil {
		t.Fatalf("rejected a valid single-shard config: %v", err)
	}
}

func TestBlockAssignIsContiguousAndBalanced(t *testing.T) {
	assign := BlockAssign(10, 4)
	want := []int32{0, 0, 0, 1, 1, 2, 2, 2, 3, 3}
	for i, s := range assign {
		if s != want[i] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
}

func TestBasicSchedulingOrder(t *testing.T) {
	c, err := New(Config{Nodes: 2, Shards: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	c.Proc(0).Schedule(3*sim.Millisecond, func(p *Proc) { order = append(order, "c") })
	c.Proc(0).Schedule(sim.Millisecond, func(p *Proc) {
		order = append(order, "a")
		// Zero-delay self events run within the same timestamp, after
		// anything already carrying a smaller key.
		p.Schedule(0, func(q *Proc) { order = append(order, "a0") })
	})
	c.Proc(1).ScheduleNode(0, 2*sim.Millisecond, func(p *Proc) {
		if p.ID() != 0 {
			t.Errorf("callback ran on node %d, want 0", p.ID())
		}
		order = append(order, "b")
	})
	c.Run(sim.Second)
	if got := strings.Join(order, ","); got != "a,a0,b,c" {
		t.Fatalf("execution order %q, want a,a0,b,c", got)
	}
	if c.Executed() != 4 {
		t.Fatalf("Executed() = %d, want 4", c.Executed())
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", c.Pending())
	}
	if c.Now() != sim.Second {
		t.Fatalf("Now() = %v, want %v", c.Now(), sim.Second)
	}
}

func TestRunHorizonAndResume(t *testing.T) {
	c, err := New(Config{Nodes: 1, Shards: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var fired []Time
	c.Proc(0).Schedule(sim.Millisecond, func(p *Proc) { fired = append(fired, p.Now()) })
	c.Proc(0).Schedule(5*sim.Millisecond, func(p *Proc) { fired = append(fired, p.Now()) })
	c.Proc(0).Schedule(10*sim.Millisecond, func(p *Proc) { fired = append(fired, p.Now()) })
	c.Run(5 * sim.Millisecond) // events exactly at the horizon run
	if len(fired) != 2 || c.Pending() != 1 {
		t.Fatalf("after first Run: fired %v, pending %d", fired, c.Pending())
	}
	c.Run(sim.Second)
	if len(fired) != 3 || fired[2] != 10*sim.Millisecond {
		t.Fatalf("after second Run: fired %v", fired)
	}
}

func TestNilCallbackPanics(t *testing.T) {
	c, err := New(Config{Nodes: 2, Shards: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		want string
		call func()
	}{
		{"shard: Schedule with nil callback", func() { c.Proc(0).Schedule(0, nil) }},
		{"shard: ScheduleNode with nil callback", func() { c.Proc(0).ScheduleNode(1, sim.Millisecond, nil) }},
	} {
		func() {
			defer func() {
				if r := recover(); r != tc.want {
					t.Errorf("panic = %v, want %q", r, tc.want)
				}
			}()
			tc.call()
		}()
	}
}

func TestCrossNodeZeroDelayPanics(t *testing.T) {
	c, err := New(Config{Nodes: 2, Shards: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero-delay cross-node schedule did not panic")
		}
	}()
	c.Proc(0).ScheduleNode(1, 0, func(p *Proc) {})
}

// TestLookaheadViolationPanicsFromRun checks both that a cross-shard
// delay below the lookahead is caught, and that a worker-goroutine
// panic is re-raised from Run on the caller's goroutine instead of
// stranding the other shards at the barrier.
func TestLookaheadViolationPanicsFromRun(t *testing.T) {
	c, err := New(Config{Nodes: 4, Shards: 2, Seed: 1, Lookahead: 2 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	c.Proc(0).Schedule(sim.Millisecond, func(p *Proc) {
		p.ScheduleNode(3, sim.Millisecond, func(q *Proc) {}) // below 2ms lookahead
	})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("lookahead violation did not panic")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "below lookahead") {
			t.Fatalf("unexpected panic: %v", r)
		}
	}()
	c.Run(sim.Second)
}

// storm runs a randomized message-relay workload — cross-node sends at
// latencies above the lookahead, per-node RNG draws, zero-delay local
// bookkeeping events — and returns the JSONL trace bytes plus the
// executed-event count.
func storm(t *testing.T, nodes, shards int, seed int64, hops int) ([]byte, uint64) {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewJSONL(&buf)
	la := 2 * sim.Millisecond
	c, err := New(Config{Nodes: nodes, Shards: shards, Seed: seed, Lookahead: la, Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	var relay func(p *Proc, hops int)
	relay = func(p *Proc, hops int) {
		p.Emit(obs.Event{
			Type: obs.MsgDelivered, At: int64(p.Now()),
			Node: p.ID(), Peer: -1, Seq: int64(hops), Slot: -1, Hop: hops,
		})
		if hops <= 0 {
			return
		}
		if p.RNG().Intn(4) == 0 {
			// Zero-delay self event: same timestamp, later key.
			p.Schedule(0, func(q *Proc) {
				q.Emit(obs.Event{
					Type: obs.MsgSent, At: int64(q.Now()),
					Node: q.ID(), Peer: -1, Seq: -1, Slot: -1, Hop: -1,
				})
			})
		}
		dst := p.RNG().Intn(nodes - 1)
		if dst >= p.ID() {
			dst++
		}
		delay := la + Time(p.RNG().Intn(6000))*sim.Microsecond
		next := hops - 1
		p.ScheduleNode(dst, delay, func(q *Proc) { relay(q, next) })
	}
	for i := 0; i < nodes; i++ {
		c.Proc(i).Schedule(Time(i+1)*sim.Millisecond, func(p *Proc) { relay(p, hops) })
	}
	c.Run(2 * sim.Second)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), c.Executed()
}

// TestDeterminismAcrossShardCounts is the engine-level half of the
// trace-hash oracle: the same seed must yield byte-identical traces
// and equal executed-event totals for every shard count.
func TestDeterminismAcrossShardCounts(t *testing.T) {
	refTrace, refExec := storm(t, 64, 1, 42, 12)
	if refExec == 0 || len(refTrace) == 0 {
		t.Fatal("reference run executed nothing")
	}
	for _, k := range []int{2, 4, 8} {
		trace, exec := storm(t, 64, k, 42, 12)
		if exec != refExec {
			t.Errorf("K=%d executed %d events, K=1 executed %d", k, exec, refExec)
		}
		if !bytes.Equal(trace, refTrace) {
			t.Errorf("K=%d trace differs from K=1 (lengths %d vs %d)",
				k, len(trace), len(refTrace))
		}
	}
}

// TestDeterminismRepeatedRuns checks that the same configuration run
// twice gives the same trace — i.e. nothing leaks wall-clock or map
// iteration order into the history.
func TestDeterminismRepeatedRuns(t *testing.T) {
	a, _ := storm(t, 32, 4, 7, 8)
	b, _ := storm(t, 32, 4, 7, 8)
	if !bytes.Equal(a, b) {
		t.Fatal("identical configurations produced different traces")
	}
}

func TestPerNodeRNGStreamsDiffer(t *testing.T) {
	c, err := New(Config{Nodes: 4, Shards: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a := c.Proc(0).RNG().Uint64()
	b := c.Proc(1).RNG().Uint64()
	if a == b {
		t.Fatal("adjacent nodes drew identical first values")
	}
	// Same seed rebuilds the same streams.
	c2, err := New(Config{Nodes: 4, Shards: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if got := c2.Proc(0).RNG().Uint64(); got != a {
		t.Fatalf("stream not reproducible: %d vs %d", got, a)
	}
}

func TestProcData(t *testing.T) {
	c, err := New(Config{Nodes: 2, Shards: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	type state struct{ hits int }
	c.Proc(0).SetData(&state{})
	c.Proc(0).Schedule(sim.Millisecond, func(p *Proc) {
		p.Data().(*state).hits++
	})
	c.Run(sim.Second)
	if got := c.Proc(0).Data().(*state).hits; got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
}
