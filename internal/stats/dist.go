// Package stats provides the probability distributions, random sampling
// and summary statistics used throughout the simulator: the Pareto node
// lifetime model central to the paper (§4.9, §6.1), plus the exponential
// and uniform alternatives of Table 4, empirical CDFs for Figure 1, and
// result summaries for the experiment harnesses.
package stats

import (
	"fmt"
	"math"
	"math/rand"
)

// Dist is a one-dimensional probability distribution that can be sampled
// and evaluated.
type Dist interface {
	// Sample draws one value using r.
	Sample(r *rand.Rand) float64
	// CDF returns P(X <= x).
	CDF(x float64) float64
	// Mean returns the distribution mean; +Inf if it does not exist.
	Mean() float64
	// Median returns the distribution median.
	Median() float64
	// String describes the distribution and its parameters.
	String() string
}

// Pareto is the classic (type I) Pareto distribution with shape Alpha
// and scale Beta: P(X > x) = (Beta/x)^Alpha for x >= Beta. The paper
// models node lifetimes with Alpha = 0.83, Beta = 1560 s (Gnutella fit,
// Fig. 1) and drives churn with Alpha = 1, Beta = 1800 s (median 1 h,
// §6.1).
type Pareto struct {
	Alpha float64 // shape
	Beta  float64 // scale (minimum value)
}

// NewPareto constructs a Pareto distribution, validating parameters.
func NewPareto(alpha, beta float64) (Pareto, error) {
	if alpha <= 0 || beta <= 0 {
		return Pareto{}, fmt.Errorf("stats: Pareto requires positive parameters, got alpha=%g beta=%g", alpha, beta)
	}
	return Pareto{Alpha: alpha, Beta: beta}, nil
}

// ParetoWithMedian returns the Pareto distribution with the given shape
// whose median equals median: beta = median / 2^(1/alpha).
func ParetoWithMedian(alpha, median float64) (Pareto, error) {
	if median <= 0 {
		return Pareto{}, fmt.Errorf("stats: median must be positive, got %g", median)
	}
	return NewPareto(alpha, median/math.Pow(2, 1/alpha))
}

// Sample draws via inverse transform: X = Beta / U^(1/Alpha).
func (p Pareto) Sample(r *rand.Rand) float64 {
	u := 1 - r.Float64() // in (0, 1]
	return p.Beta / math.Pow(u, 1/p.Alpha)
}

// CDF returns 1 - (Beta/x)^Alpha for x >= Beta, else 0. This is the
// "probability of a node dying before time t" from §4.9.
func (p Pareto) CDF(x float64) float64 {
	if x < p.Beta {
		return 0
	}
	return 1 - math.Pow(p.Beta/x, p.Alpha)
}

// Mean is Alpha*Beta/(Alpha-1) for Alpha > 1, +Inf otherwise.
func (p Pareto) Mean() float64 {
	if p.Alpha <= 1 {
		return math.Inf(1)
	}
	return p.Alpha * p.Beta / (p.Alpha - 1)
}

// Median is Beta * 2^(1/Alpha).
func (p Pareto) Median() float64 { return p.Beta * math.Pow(2, 1/p.Alpha) }

// SurvivalConditional returns P(lifetime > alive+since | lifetime > alive)
// = (alive / (alive+since))^Alpha — Equation 1 of the paper.
func (p Pareto) SurvivalConditional(alive, since float64) float64 {
	if alive <= 0 {
		return 0
	}
	if since < 0 {
		since = 0
	}
	return math.Pow(alive/(alive+since), p.Alpha)
}

func (p Pareto) String() string {
	return fmt.Sprintf("Pareto(alpha=%g, beta=%gs)", p.Alpha, p.Beta)
}

// Exponential is the exponential distribution with the given Mean.
// Table 4 uses mean 1 h: memoryless, so a node's age carries no
// information about its remaining lifetime.
type Exponential struct {
	MeanVal float64
}

// NewExponential constructs an exponential distribution with mean mean.
func NewExponential(mean float64) (Exponential, error) {
	if mean <= 0 {
		return Exponential{}, fmt.Errorf("stats: Exponential requires positive mean, got %g", mean)
	}
	return Exponential{MeanVal: mean}, nil
}

// Sample draws from the distribution.
func (e Exponential) Sample(r *rand.Rand) float64 { return r.ExpFloat64() * e.MeanVal }

// CDF returns 1 - exp(-x/mean).
func (e Exponential) CDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return 1 - math.Exp(-x/e.MeanVal)
}

// Mean returns the mean.
func (e Exponential) Mean() float64 { return e.MeanVal }

// Median returns mean * ln 2.
func (e Exponential) Median() float64 { return e.MeanVal * math.Ln2 }

func (e Exponential) String() string { return fmt.Sprintf("Exponential(mean=%gs)", e.MeanVal) }

// Uniform is the continuous uniform distribution on [Lo, Hi]. Table 4
// uses lifetimes "uniformly at random between 6 minutes and nearly two
// hours, with an average of 1 hour": [360 s, 6840 s].
type Uniform struct {
	Lo, Hi float64
}

// NewUniform constructs a uniform distribution on [lo, hi].
func NewUniform(lo, hi float64) (Uniform, error) {
	if hi <= lo {
		return Uniform{}, fmt.Errorf("stats: Uniform requires lo < hi, got [%g, %g]", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample draws from the distribution.
func (u Uniform) Sample(r *rand.Rand) float64 { return u.Lo + r.Float64()*(u.Hi-u.Lo) }

// CDF returns the linear CDF on [Lo, Hi].
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x < u.Lo:
		return 0
	case x > u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

// Median returns (Lo+Hi)/2.
func (u Uniform) Median() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("Uniform[%gs, %gs]", u.Lo, u.Hi) }
