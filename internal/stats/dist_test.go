package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParetoValidation(t *testing.T) {
	if _, err := NewPareto(0, 1); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := NewPareto(1, -1); err == nil {
		t.Error("beta<0 accepted")
	}
	if _, err := NewPareto(0.83, 1560); err != nil {
		t.Errorf("valid Pareto rejected: %v", err)
	}
}

func TestParetoMedian(t *testing.T) {
	// The paper's churn model: alpha=1, beta=1800s gives median 1 hour.
	p, err := NewPareto(1, 1800)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Median(); math.Abs(got-3600) > 1e-9 {
		t.Fatalf("median = %g, want 3600", got)
	}
	if got := p.CDF(3600); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("CDF(median) = %g, want 0.5", got)
	}
}

func TestParetoWithMedian(t *testing.T) {
	for _, alpha := range []float64{0.5, 0.83, 1, 2} {
		p, err := ParetoWithMedian(alpha, 3600)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(p.Median()-3600) > 1e-6 {
			t.Fatalf("alpha=%g: median = %g, want 3600", alpha, p.Median())
		}
	}
	if _, err := ParetoWithMedian(1, 0); err == nil {
		t.Error("zero median accepted")
	}
}

func TestParetoSampleRange(t *testing.T) {
	p, _ := NewPareto(1, 1800)
	r := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		if x := p.Sample(r); x < p.Beta {
			t.Fatalf("sample %g below scale %g", x, p.Beta)
		}
	}
}

func TestParetoSampleMatchesCDF(t *testing.T) {
	p, _ := NewPareto(0.83, 1560)
	r := rand.New(rand.NewSource(2))
	n := 200000
	var below float64
	q := p.Median()
	for i := 0; i < n; i++ {
		if p.Sample(r) <= q {
			below++
		}
	}
	frac := below / float64(n)
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("fraction below median = %g, want ~0.5", frac)
	}
}

func TestParetoMean(t *testing.T) {
	p, _ := NewPareto(1, 1800)
	if !math.IsInf(p.Mean(), 1) {
		t.Error("alpha<=1 should have infinite mean")
	}
	p2, _ := NewPareto(2, 1800)
	if got := p2.Mean(); math.Abs(got-3600) > 1e-9 {
		t.Fatalf("alpha=2 mean = %g, want 3600", got)
	}
}

func TestSurvivalConditionalEquation1(t *testing.T) {
	// Equation 1: p = (alive / (alive + since))^alpha. Check against the
	// ratio of survival functions.
	p, _ := NewPareto(0.83, 1560)
	alive, since := 5000.0, 2000.0
	want := ((1 - p.CDF(alive+since)) / (1 - p.CDF(alive)))
	got := p.SurvivalConditional(alive, since)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("conditional survival = %g, want %g", got, want)
	}
	if p.SurvivalConditional(alive, 0) != 1 {
		t.Error("since=0 should give probability 1")
	}
	if p.SurvivalConditional(0, 10) != 0 {
		t.Error("alive=0 should give probability 0")
	}
	if p.SurvivalConditional(alive, -5) != 1 {
		t.Error("negative since should clamp to 0")
	}
}

func TestSurvivalMonotonicity(t *testing.T) {
	// Longer observed lifetime => higher survival probability (the
	// heavy-tail property biased mix choice exploits).
	p, _ := NewPareto(0.83, 1560)
	f := func(rawAlive, rawSince uint16) bool {
		alive := 1 + float64(rawAlive)
		since := float64(rawSince)
		return p.SurvivalConditional(alive*2, since) >= p.SurvivalConditional(alive, since)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExponential(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("zero mean accepted")
	}
	e, err := NewExponential(3600)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.Median()-3600*math.Ln2) > 1e-9 {
		t.Error("median wrong")
	}
	if e.CDF(-1) != 0 {
		t.Error("CDF(-1) != 0")
	}
	if math.Abs(e.CDF(3600)-(1-math.Exp(-1))) > 1e-12 {
		t.Error("CDF(mean) wrong")
	}
	r := rand.New(rand.NewSource(3))
	var sum float64
	n := 100000
	for i := 0; i < n; i++ {
		sum += e.Sample(r)
	}
	if mean := sum / float64(n); math.Abs(mean-3600) > 50 {
		t.Fatalf("sample mean = %g, want ~3600", mean)
	}
}

func TestUniform(t *testing.T) {
	if _, err := NewUniform(5, 5); err == nil {
		t.Error("empty interval accepted")
	}
	// Table 4's uniform lifetime: [6 min, ~114 min] with mean 1 h.
	u, err := NewUniform(360, 6840)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(u.Mean()-3600) > 1e-9 {
		t.Fatalf("mean = %g, want 3600", u.Mean())
	}
	if u.CDF(0) != 0 || u.CDF(10000) != 1 {
		t.Error("CDF tails wrong")
	}
	if math.Abs(u.CDF(3600)-0.5) > 1e-12 {
		t.Error("CDF(mean) != 0.5")
	}
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		x := u.Sample(r)
		if x < 360 || x > 6840 {
			t.Fatalf("sample %g out of range", x)
		}
	}
}

func TestDistStrings(t *testing.T) {
	p, _ := NewPareto(1, 1800)
	e, _ := NewExponential(3600)
	u, _ := NewUniform(360, 6840)
	for _, d := range []Dist{p, e, u} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
}
