package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count         int
	Mean          float64
	Median        float64
	StdDev        float64
	Min, Max      float64
	P10, P90, P99 float64
}

// Summarize computes descriptive statistics. An empty sample yields a
// zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	var sum, sumsq float64
	for _, x := range s {
		sum += x
		sumsq += x * x
	}
	n := float64(len(s))
	mean := sum / n
	variance := sumsq/n - mean*mean
	if variance < 0 {
		variance = 0 // numerical noise
	}
	return Summary{
		Count:  len(s),
		Mean:   mean,
		Median: Percentile(s, 50),
		StdDev: math.Sqrt(variance),
		Min:    s[0],
		Max:    s[len(s)-1],
		P10:    Percentile(s, 10),
		P90:    Percentile(s, 90),
		P99:    Percentile(s, 99),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f median=%.3f sd=%.3f min=%.3f p90=%.3f max=%.3f",
		s.Count, s.Mean, s.Median, s.StdDev, s.Min, s.P90, s.Max)
}

// Percentile returns the p-th percentile (0..100) of an ascending-sorted
// sample using linear interpolation. It panics on an empty sample.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// MeanCI95 returns the sample mean and the half-width of its 95%
// confidence interval under the normal approximation
// (1.96 · s/√n, with the unbiased sample standard deviation). For n < 2
// the half-width is 0 — there is no spread to estimate.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	mean = Mean(xs)
	if n < 2 {
		return mean, 0
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(n-1))
	return mean, 1.96 * sd / math.Sqrt(float64(n))
}

// EmpiricalCDF is a step-function CDF built from a sample, used to plot
// Figure 1 and compute goodness of fit.
type EmpiricalCDF struct {
	sorted []float64
}

// NewEmpiricalCDF builds an empirical CDF from the sample (copied).
func NewEmpiricalCDF(sample []float64) *EmpiricalCDF {
	s := make([]float64, len(sample))
	copy(s, sample)
	sort.Float64s(s)
	return &EmpiricalCDF{sorted: s}
}

// At returns the fraction of the sample <= x.
func (e *EmpiricalCDF) At(x float64) float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	// Index of first element > x.
	i := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(e.sorted))
}

// Len returns the sample size.
func (e *EmpiricalCDF) Len() int { return len(e.sorted) }

// KolmogorovSmirnov returns the K-S statistic sup_x |F_n(x) - F(x)|
// between the empirical CDF and a reference distribution.
func (e *EmpiricalCDF) KolmogorovSmirnov(ref Dist) float64 {
	n := float64(len(e.sorted))
	var d float64
	for i, x := range e.sorted {
		fx := ref.CDF(x)
		// Compare against the CDF value both just before and at x.
		if diff := math.Abs(float64(i+1)/n - fx); diff > d {
			d = diff
		}
		if diff := math.Abs(fx - float64(i)/n); diff > d {
			d = diff
		}
	}
	return d
}
