package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("stddev = %g, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary should be zero: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated its input")
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 40}, {50, 25}, {25, 17.5}, {-5, 10}, {200, 40},
	}
	for _, c := range cases {
		if got := Percentile(sorted, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestPercentileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Percentile of empty sample did not panic")
		}
	}()
	Percentile(nil, 50)
}

func TestMeanCI95(t *testing.T) {
	if m, w := MeanCI95(nil); m != 0 || w != 0 {
		t.Fatal("empty sample CI not zero")
	}
	if m, w := MeanCI95([]float64{7}); m != 7 || w != 0 {
		t.Fatal("single sample must have zero half-width")
	}
	// Constant sample: zero spread.
	if _, w := MeanCI95([]float64{3, 3, 3, 3}); w != 0 {
		t.Fatalf("constant sample half-width = %g", w)
	}
	// Known case: {1, 3} has mean 2, sd = sqrt(2), n=2.
	m, w := MeanCI95([]float64{1, 3})
	if m != 2 {
		t.Fatalf("mean = %g", m)
	}
	want := 1.96 * math.Sqrt2 / math.Sqrt(2)
	if math.Abs(w-want) > 1e-12 {
		t.Fatalf("half-width = %g, want %g", w, want)
	}
	// More samples of the same spread shrink the interval.
	_, w4 := MeanCI95([]float64{1, 3, 1, 3})
	if w4 >= w {
		t.Fatalf("CI did not shrink with n: %g vs %g", w4, w)
	}
}

func TestMeanHelper(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if Mean([]float64{2, 4}) != 3 {
		t.Error("Mean broken")
	}
}

func TestEmpiricalCDF(t *testing.T) {
	e := NewEmpiricalCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := e.At(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.x, got, c.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len() = %d, want 4", e.Len())
	}
	if NewEmpiricalCDF(nil).At(5) != 0 {
		t.Error("empty CDF should be 0 everywhere")
	}
}

func TestKolmogorovSmirnovSelfConsistency(t *testing.T) {
	// A large sample drawn from the reference distribution must have a
	// small K-S distance; a sample from a very different one must not.
	p, _ := NewPareto(0.83, 1560)
	r := rand.New(rand.NewSource(5))
	sample := make([]float64, 20000)
	for i := range sample {
		sample[i] = p.Sample(r)
	}
	e := NewEmpiricalCDF(sample)
	if d := e.KolmogorovSmirnov(p); d > 0.02 {
		t.Fatalf("K-S distance to own distribution = %g, want < 0.02", d)
	}
	u, _ := NewUniform(360, 6840)
	if d := e.KolmogorovSmirnov(u); d < 0.2 {
		t.Fatalf("K-S distance to mismatched distribution = %g, want > 0.2", d)
	}
}
