// Geo is the O(n)-memory counterpart of Matrix for very large
// networks: instead of materializing n^2 pairwise RTTs (80 GB at 100k
// nodes), it keeps one 2-D coordinate per node and derives each pair's
// latency on demand from the embedding distance plus deterministic
// per-pair jitter. The statistical character matches Matrix — geographic
// structure with multiplicative noise, rescaled to a target mean RTT,
// floored at MinRTT — but pairs are computed, not stored, so the sharded
// engine can run 100k–1M node sweeps.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"resilientmix/internal/sim"
)

// geoJitterSpread is the half-width of the multiplicative per-pair
// jitter band [1-spread, 1+spread) applied on top of embedding
// distance. It approximates the lognormal(0, 0.35) jitter Matrix uses
// at a fraction of the per-pair cost (one hash, no exp).
const geoJitterSpread = 0.35

// Geo derives pairwise latencies from a random 2-D embedding. All
// methods are safe for concurrent use (the struct is immutable after
// construction), which the sharded engine relies on: every shard reads
// latencies from its own goroutine.
type Geo struct {
	n     int
	xs    []float64
	ys    []float64
	scale float64 // distance*jitter -> RTT microseconds
	floor sim.Time
}

// NewGeo builds an n-node coordinate topology with the given seed,
// rescaled so the mean RTT over random pairs matches meanRTT. Memory is
// O(n); every pairwise latency is computed on demand.
func NewGeo(n int, meanRTT sim.Time, seed int64) (*Geo, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", n)
	}
	if meanRTT <= 0 {
		return nil, fmt.Errorf("topology: mean RTT must be positive, got %v", meanRTT)
	}
	rng := rand.New(rand.NewSource(seed))
	g := &Geo{n: n, xs: make([]float64, n), ys: make([]float64, n), floor: MinRTT}
	for i := 0; i < n; i++ {
		g.xs[i] = rng.Float64()
		g.ys[i] = rng.Float64()
	}
	// Calibrate the distance->RTT scale on a deterministic sample of
	// pairs rather than all n^2 (the whole point is not to do n^2 work).
	const samples = 1 << 14
	var sum float64
	var count int
	for s := 0; s < samples; s++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		sum += g.raw(i, j)
		count++
	}
	g.scale = float64(meanRTT) / (sum / float64(count))
	return g, nil
}

// raw returns distance * jitter for a pair, before scaling.
func (g *Geo) raw(i, j int) float64 {
	dx, dy := g.xs[i]-g.xs[j], g.ys[i]-g.ys[j]
	dist := math.Sqrt(dx*dx + dy*dy)
	return dist * pairJitter(i, j)
}

// pairJitter returns a deterministic, symmetric multiplicative jitter
// in [1-geoJitterSpread, 1+geoJitterSpread) for the pair, derived by
// hashing the unordered pair id. It replaces Matrix's stored lognormal
// draw so equal pairs always see equal latency without any storage.
func pairJitter(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	h := mix64(uint64(i)<<32 | uint64(j))
	u := float64(h>>11) / float64(1<<53) // [0, 1)
	return 1 - geoJitterSpread + 2*geoJitterSpread*u
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash used for per-pair jitter.
func mix64(z uint64) uint64 {
	z += 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// N returns the number of nodes.
func (g *Geo) N() int { return g.n }

// RTT returns the round-trip time between nodes i and j, floored at
// MinRTT for distinct pairs; the zero diagonal means a node reaches
// itself instantly.
func (g *Geo) RTT(i, j int) sim.Time {
	if i == j {
		return 0
	}
	v := sim.Time(g.raw(i, j) * g.scale)
	if v < g.floor {
		v = g.floor
	}
	return v
}

// OneWay returns the one-way latency between i and j (half the RTT).
func (g *Geo) OneWay(i, j int) sim.Time { return g.RTT(i, j) / 2 }

// MinOneWay returns the floor's one-way latency. It is a conservative
// lower bound: no pair is ever below MinRTT by construction, and at
// large n some pair is essentially certain to sit on the floor, so the
// bound is also tight without an O(n^2) scan.
func (g *Geo) MinOneWay() sim.Time { return g.floor / 2 }
