package topology

import (
	"math"
	"testing"

	"resilientmix/internal/sim"
)

func TestGeoBasicProperties(t *testing.T) {
	g, err := NewGeo(512, DefaultMeanRTT, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 512 {
		t.Fatalf("N() = %d", g.N())
	}
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			rtt := g.RTT(i, j)
			switch {
			case i == j && rtt != 0:
				t.Fatalf("RTT(%d,%d) = %v, want 0 on the diagonal", i, j, rtt)
			case i != j && rtt < MinRTT:
				t.Fatalf("RTT(%d,%d) = %v below floor %v", i, j, rtt, MinRTT)
			}
			if rtt != g.RTT(j, i) {
				t.Fatalf("RTT not symmetric at (%d,%d)", i, j)
			}
			if g.OneWay(i, j) != rtt/2 {
				t.Fatalf("OneWay(%d,%d) != RTT/2", i, j)
			}
		}
	}
	if got := g.MinOneWay(); got != MinRTT/2 {
		t.Fatalf("MinOneWay() = %v, want %v", got, MinRTT/2)
	}
}

func TestGeoDeterministicAcrossInstances(t *testing.T) {
	a, err := NewGeo(256, DefaultMeanRTT, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewGeo(256, DefaultMeanRTT, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 256; i += 7 {
		for j := 0; j < 256; j += 11 {
			if a.RTT(i, j) != b.RTT(i, j) {
				t.Fatalf("same seed, different RTT at (%d,%d)", i, j)
			}
		}
	}
	c, err := NewGeo(256, DefaultMeanRTT, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < 256 && same; i++ {
		if a.RTT(i, (i+1)%256) != c.RTT(i, (i+1)%256) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical latencies")
	}
}

func TestGeoMeanNearTarget(t *testing.T) {
	g, err := NewGeo(1024, DefaultMeanRTT, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var pairs int
	for i := 0; i < 1024; i += 3 {
		for j := i + 1; j < 1024; j += 5 {
			sum += float64(g.RTT(i, j))
			pairs++
		}
	}
	mean := sum / float64(pairs)
	if ratio := mean / float64(DefaultMeanRTT); math.Abs(ratio-1) > 0.10 {
		t.Fatalf("mean RTT %.1fms is %.0f%% off the %v target", mean/1000, (ratio-1)*100, DefaultMeanRTT)
	}
}

func TestMatrixMinOneWay(t *testing.T) {
	m, err := Uniform(8, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MinOneWay(); got != 5*sim.Millisecond {
		t.Fatalf("MinOneWay() = %v, want 5ms", got)
	}
	g, err := Generate(64, DefaultMeanRTT, 3)
	if err != nil {
		t.Fatal(err)
	}
	min := g.MinOneWay()
	if min <= 0 {
		t.Fatalf("MinOneWay() = %v, want positive", min)
	}
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			if i != j && g.OneWay(i, j) < min {
				t.Fatalf("OneWay(%d,%d) = %v below reported minimum %v", i, j, g.OneWay(i, j), min)
			}
		}
	}
}

func TestMatrixMinCrossOneWay(t *testing.T) {
	m, err := Generate(64, DefaultMeanRTT, 5)
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int32, 64)
	for i := range assign {
		assign[i] = int32(i * 4 / 64) // 4 contiguous blocks
	}
	cross, ok := m.MinCrossOneWay(assign)
	if !ok {
		t.Fatal("no cross pair found in a 4-shard assignment")
	}
	if global := m.MinOneWay(); cross < global {
		t.Fatalf("cross minimum %v below global minimum %v", cross, global)
	}
	// Verify against a brute-force scan.
	want := sim.Time(0)
	for i := 0; i < 64; i++ {
		for j := i + 1; j < 64; j++ {
			if assign[i] == assign[j] {
				continue
			}
			if v := m.OneWay(i, j); want == 0 || v < want {
				want = v
			}
		}
	}
	if cross != want {
		t.Fatalf("MinCrossOneWay = %v, brute force says %v", cross, want)
	}
	// Single shard: no cross pair.
	if _, ok := m.MinCrossOneWay(make([]int32, 64)); ok {
		t.Fatal("single-shard assignment reported a cross pair")
	}
}
