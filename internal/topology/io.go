package topology

import (
	"bufio"
	"fmt"
	"io"

	"resilientmix/internal/sim"
)

// Matrix file format: a plain-text square matrix of round-trip times.
// The first line holds the node count N; each of the next N lines holds
// N whitespace-separated RTTs in microseconds. Operators who hold real
// King measurements (the dataset the paper used is not redistributable)
// can export them to this format and load them in place of the
// synthetic matrix.

// Save writes the matrix in the text format above.
func (m *Matrix) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, m.n); err != nil {
		return err
	}
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if j > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d", int64(m.RTT(i, j))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a matrix in the text format above, validating shape,
// symmetry, a zero diagonal and non-negative entries.
func Load(r io.Reader) (*Matrix, error) {
	br := bufio.NewReader(r)
	var n int
	if _, err := fmt.Fscan(br, &n); err != nil {
		return nil, fmt.Errorf("topology: reading node count: %w", err)
	}
	if n < 2 {
		return nil, fmt.Errorf("topology: matrix needs at least 2 nodes, got %d", n)
	}
	m := &Matrix{n: n, rtt: make([]sim.Time, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var v int64
			if _, err := fmt.Fscan(br, &v); err != nil {
				return nil, fmt.Errorf("topology: reading entry (%d,%d): %w", i, j, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("topology: negative RTT %d at (%d,%d)", v, i, j)
			}
			m.rtt[i*n+j] = sim.Time(v)
		}
	}
	for i := 0; i < n; i++ {
		if m.RTT(i, i) != 0 {
			return nil, fmt.Errorf("topology: non-zero diagonal at %d", i)
		}
		for j := i + 1; j < n; j++ {
			if m.RTT(i, j) != m.RTT(j, i) {
				return nil, fmt.Errorf("topology: asymmetric RTT at (%d,%d)", i, j)
			}
		}
	}
	return m, nil
}
