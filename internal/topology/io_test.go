package topology

import (
	"bytes"
	"strings"
	"testing"

	"resilientmix/internal/sim"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig, err := Generate(16, DefaultMeanRTT, 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.N() != orig.N() {
		t.Fatalf("N = %d, want %d", loaded.N(), orig.N())
	}
	for i := 0; i < orig.N(); i++ {
		for j := 0; j < orig.N(); j++ {
			if loaded.RTT(i, j) != orig.RTT(i, j) {
				t.Fatalf("RTT(%d,%d) changed across save/load", i, j)
			}
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"tiny":         "1\n0\n",
		"truncated":    "3\n0 1 2\n1 0 3\n",
		"nonsense":     "x\n",
		"negative":     "2\n0 -5\n-5 0\n",
		"asymmetric":   "2\n0 5\n6 0\n",
		"bad diagonal": "2\n7 5\n5 0\n",
	}
	for name, input := range cases {
		if _, err := Load(strings.NewReader(input)); err == nil {
			t.Errorf("%s matrix accepted", name)
		}
	}
}

func TestLoadValid(t *testing.T) {
	m, err := Load(strings.NewReader("2\n0 5000\n5000 0\n"))
	if err != nil {
		t.Fatal(err)
	}
	if m.RTT(0, 1) != 5000*sim.Microsecond {
		t.Fatalf("RTT = %v", m.RTT(0, 1))
	}
	if m.OneWay(0, 1) != 2500*sim.Microsecond {
		t.Fatalf("OneWay = %v", m.OneWay(0, 1))
	}
}
