// Package topology synthesizes the pairwise latency matrix of the
// simulated network. The paper derives inter-node latencies from King
// measurements of 1024 DNS servers with an average RTT of 152 ms (§6.1);
// that dataset is not redistributable, so we generate a matrix with the
// same statistical character: a random 2-D geographic embedding plus
// lognormal per-pair jitter, rescaled so the mean RTT matches exactly.
// See DESIGN.md, substitution 2.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"resilientmix/internal/sim"
)

// DefaultMeanRTT is the average round-trip time reported for the paper's
// simulated network.
const DefaultMeanRTT = 152 * sim.Millisecond

// MinRTT is a floor applied to every pair so no two distinct nodes are
// unrealistically close.
const MinRTT = 2 * sim.Millisecond

// Latency is the view of a topology the simulators need: a one-way
// latency for every ordered pair of distinct nodes, plus the global
// minimum the sharded engine's conservative lookahead is derived from.
// Matrix (dense, exact, O(n^2) memory) and Geo (coordinate-based,
// O(n) memory, for 100k+ node sweeps) both implement it.
type Latency interface {
	N() int
	OneWay(i, j int) sim.Time
	// MinOneWay returns a positive lower bound on OneWay over all
	// distinct pairs. It may be conservative (smaller than the true
	// minimum); the sharded engine only needs "no cross-node event
	// arrives sooner than this".
	MinOneWay() sim.Time
}

// CrossLatency is an optional refinement of Latency: the minimum
// one-way latency restricted to pairs whose shard assignments differ.
// When the topology can afford the scan, this bound is tighter than
// MinOneWay, which widens the sharded engine's synchronization windows.
type CrossLatency interface {
	// MinCrossOneWay returns the minimum OneWay over pairs (i, j) with
	// assign[i] != assign[j], and false when no such pair exists (all
	// nodes on one shard).
	MinCrossOneWay(assign []int32) (sim.Time, bool)
}

// LookaheadFor returns the conservative lookahead bound for a sharded
// run over lat with the given node→shard assignment: the minimum
// cross-shard one-way latency when the topology can compute it, the
// global minimum otherwise. The result is the widest window width that
// still guarantees no cross-shard event lands inside the window that
// scheduled it.
func LookaheadFor(lat Latency, assign []int32) sim.Time {
	if cl, ok := lat.(CrossLatency); ok {
		if v, found := cl.MinCrossOneWay(assign); found {
			return v
		}
	}
	return lat.MinOneWay()
}

// Matrix holds symmetric pairwise RTTs for n nodes. The zero diagonal
// means a node reaches itself instantly.
type Matrix struct {
	n   int
	rtt []sim.Time // row-major n*n, microseconds
}

// Generate builds an n-node latency matrix using the given seed, scaled
// to the requested mean RTT.
func Generate(n int, meanRTT sim.Time, seed int64) (*Matrix, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", n)
	}
	if meanRTT <= 0 {
		return nil, fmt.Errorf("topology: mean RTT must be positive, got %v", meanRTT)
	}
	rng := rand.New(rand.NewSource(seed))

	// Random 2-D embedding: captures the triangle-inequality-ish
	// geographic structure of real latencies.
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = rng.Float64()
		ys[i] = rng.Float64()
	}

	m := &Matrix{n: n, rtt: make([]sim.Time, n*n)}
	// First pass: raw RTT = distance * lognormal jitter.
	raw := make([]float64, n*n)
	var sum float64
	var pairs int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			dist := math.Sqrt(dx*dx + dy*dy)
			jitter := math.Exp(rng.NormFloat64() * 0.35)
			v := dist * jitter
			raw[i*n+j] = v
			sum += v
			pairs++
		}
	}
	scale := float64(meanRTT) / (sum / float64(pairs))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			v := sim.Time(raw[i*n+j] * scale)
			if v < MinRTT {
				v = MinRTT
			}
			m.rtt[i*n+j] = v
			m.rtt[j*n+i] = v
		}
	}
	return m, nil
}

// Uniform returns a matrix where every distinct pair has the same RTT —
// useful for analytically predictable tests.
func Uniform(n int, rtt sim.Time) (*Matrix, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: need at least 2 nodes, got %d", n)
	}
	if rtt <= 0 {
		return nil, fmt.Errorf("topology: RTT must be positive, got %v", rtt)
	}
	m := &Matrix{n: n, rtt: make([]sim.Time, n*n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.rtt[i*n+j] = rtt
			}
		}
	}
	return m, nil
}

// N returns the number of nodes.
func (m *Matrix) N() int { return m.n }

// RTT returns the round-trip time between nodes i and j.
func (m *Matrix) RTT(i, j int) sim.Time { return m.rtt[i*m.n+j] }

// OneWay returns the one-way latency between i and j (half the RTT).
func (m *Matrix) OneWay(i, j int) sim.Time { return m.rtt[i*m.n+j] / 2 }

// MinOneWay returns the exact minimum one-way latency over all
// distinct pairs — the conservative lookahead bound for the sharded
// engine when no shard assignment is known.
func (m *Matrix) MinOneWay() sim.Time {
	min := sim.Time(0)
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if v := m.rtt[i*m.n+j]; min == 0 || v < min {
				min = v
			}
		}
	}
	return min / 2
}

// MinCrossOneWay returns the minimum one-way latency over pairs whose
// shard assignments differ. A tighter bound than MinOneWay when the
// closest pairs happen to share a shard, which directly widens the
// sharded engine's lock-step windows.
func (m *Matrix) MinCrossOneWay(assign []int32) (sim.Time, bool) {
	if len(assign) != m.n {
		panic(fmt.Sprintf("topology: assignment for %d nodes, matrix has %d", len(assign), m.n))
	}
	min := sim.Time(0)
	found := false
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			if assign[i] == assign[j] {
				continue
			}
			if v := m.rtt[i*m.n+j]; !found || v < min {
				min, found = v, true
			}
		}
	}
	return min / 2, found
}

// MeanRTT returns the mean over all distinct pairs.
func (m *Matrix) MeanRTT() sim.Time {
	var sum int64
	var pairs int64
	for i := 0; i < m.n; i++ {
		for j := i + 1; j < m.n; j++ {
			sum += int64(m.rtt[i*m.n+j])
			pairs++
		}
	}
	return sim.Time(sum / pairs)
}
