package topology

import (
	"testing"

	"resilientmix/internal/sim"
)

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(1, DefaultMeanRTT, 1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Generate(10, 0, 1); err == nil {
		t.Error("zero mean RTT accepted")
	}
}

func TestGenerateMeanRTT(t *testing.T) {
	m, err := Generate(256, DefaultMeanRTT, 42)
	if err != nil {
		t.Fatal(err)
	}
	mean := m.MeanRTT()
	// The MinRTT floor can push the mean slightly above target.
	lo, hi := DefaultMeanRTT*95/100, DefaultMeanRTT*105/100
	if mean < lo || mean > hi {
		t.Fatalf("mean RTT = %v, want within 5%% of %v", mean, DefaultMeanRTT)
	}
}

func TestGenerateSymmetricZeroDiagonal(t *testing.T) {
	m, err := Generate(64, DefaultMeanRTT, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m.N(); i++ {
		if m.RTT(i, i) != 0 {
			t.Fatalf("RTT(%d,%d) = %v, want 0", i, i, m.RTT(i, i))
		}
		for j := i + 1; j < m.N(); j++ {
			if m.RTT(i, j) != m.RTT(j, i) {
				t.Fatalf("matrix not symmetric at (%d,%d)", i, j)
			}
			if m.RTT(i, j) < MinRTT {
				t.Fatalf("RTT(%d,%d) = %v below floor", i, j, m.RTT(i, j))
			}
			if m.OneWay(i, j) != m.RTT(i, j)/2 {
				t.Fatalf("OneWay != RTT/2 at (%d,%d)", i, j)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(32, DefaultMeanRTT, 99)
	b, _ := Generate(32, DefaultMeanRTT, 99)
	c, _ := Generate(32, DefaultMeanRTT, 100)
	same, diff := true, false
	for i := 0; i < 32; i++ {
		for j := 0; j < 32; j++ {
			if a.RTT(i, j) != b.RTT(i, j) {
				same = false
			}
			if a.RTT(i, j) != c.RTT(i, j) {
				diff = true
			}
		}
	}
	if !same {
		t.Error("same seed produced different matrices")
	}
	if !diff {
		t.Error("different seeds produced identical matrices")
	}
}

func TestUniformMatrix(t *testing.T) {
	m, err := Uniform(8, 100*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			want := 100 * sim.Millisecond
			if i == j {
				want = 0
			}
			if m.RTT(i, j) != want {
				t.Fatalf("RTT(%d,%d) = %v, want %v", i, j, m.RTT(i, j), want)
			}
		}
	}
	if m.MeanRTT() != 100*sim.Millisecond {
		t.Fatalf("MeanRTT = %v", m.MeanRTT())
	}
	if _, err := Uniform(1, sim.Second); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Uniform(4, 0); err == nil {
		t.Error("rtt=0 accepted")
	}
}

func TestPaperScaleMatrix(t *testing.T) {
	// The full 1024-node matrix of the paper's setup must generate
	// quickly and hit the documented mean.
	m, err := Generate(1024, DefaultMeanRTT, 1)
	if err != nil {
		t.Fatal(err)
	}
	if m.N() != 1024 {
		t.Fatalf("N = %d", m.N())
	}
	mean := m.MeanRTT()
	if mean < 140*sim.Millisecond || mean > 165*sim.Millisecond {
		t.Fatalf("1024-node mean RTT = %v, want ≈152ms", mean)
	}
}
