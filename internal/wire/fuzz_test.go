package wire

import (
	"bytes"
	"testing"
)

// FuzzReader feeds arbitrary bytes through every Reader accessor in a
// fixed order: no input may panic, and sticky errors must hold.
func FuzzReader(f *testing.F) {
	w := NewWriter()
	w.Byte(7)
	w.Bool(true)
	w.Uint32(42)
	w.Uint64(1 << 50)
	w.Bytes32([]byte("seed"))
	f.Add(w.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(bytes.Repeat([]byte{0}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		r.Byte()
		r.Bool()
		r.Uint32()
		b := r.Bytes32()
		r.Uint64()
		r.Int32()
		if r.Err() != nil {
			// After an error every read must be a zero value.
			if r.Byte() != 0 || r.Uint32() != 0 || r.Uint64() != 0 {
				t.Fatal("non-zero read after sticky error")
			}
			if r.Bytes32() != nil {
				t.Fatal("non-nil bytes after sticky error")
			}
		}
		// Bytes32 result, when non-nil, must alias within the input.
		if b != nil && len(b) > len(data) {
			t.Fatal("Bytes32 returned more data than the input holds")
		}
	})
}

// FuzzRoundTrip checks Writer->Reader identity for arbitrary payloads.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint64(2), []byte("x"), true)
	f.Fuzz(func(t *testing.T, a uint32, b uint64, blob []byte, flag bool) {
		w := NewWriter()
		w.Uint32(a)
		w.Bytes32(blob)
		w.Uint64(b)
		w.Bool(flag)
		r := NewReader(w.Bytes())
		if got := r.Uint32(); got != a {
			t.Fatalf("a: %d != %d", got, a)
		}
		if got := r.Bytes32(); !bytes.Equal(got, blob) {
			t.Fatalf("blob mismatch")
		}
		if got := r.Uint64(); got != b {
			t.Fatalf("b: %d != %d", got, b)
		}
		if got := r.Bool(); got != flag {
			t.Fatalf("flag mismatch")
		}
		if err := r.Done(); err != nil {
			t.Fatalf("Done: %v", err)
		}
	})
}
