// Package wire provides deterministic, compact binary framing for the
// protocol messages and onion layers. Bandwidth accounting in the
// evaluation (Fig. 4, Tables 2-4) depends on exact on-the-wire sizes, so
// everything that crosses the simulated network is serialized through
// this package rather than an encoding with unstable sizes.
//
// Format: fixed-width big-endian integers; byte strings are
// length-prefixed with a uvarint-free fixed uint32 (sizes here are small
// and predictability beats a byte or two of savings).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is returned when a Reader runs out of input.
var ErrTruncated = errors.New("wire: truncated input")

// Writer accumulates an encoded message.
type Writer struct {
	buf []byte
}

// NewWriter returns an empty Writer.
func NewWriter() *Writer { return &Writer{} }

// Bytes returns the encoded bytes. The returned slice aliases the
// writer's buffer; it must not be retained across further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Byte appends a single byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.Byte(1)
	} else {
		w.Byte(0)
	}
}

// Uint32 appends a big-endian uint32.
func (w *Writer) Uint32(v uint32) {
	w.buf = binary.BigEndian.AppendUint32(w.buf, v)
}

// Uint64 appends a big-endian uint64.
func (w *Writer) Uint64(v uint64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, v)
}

// Int32 appends a big-endian int32 (two's complement).
func (w *Writer) Int32(v int32) { w.Uint32(uint32(v)) }

// Bytes32 appends a uint32 length prefix followed by b.
func (w *Writer) Bytes32(b []byte) {
	w.Uint32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// Reader decodes a message produced by Writer. Errors are sticky: after
// the first failure every subsequent read returns the zero value, and
// Err reports the failure.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf (not copied).
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Done returns nil if the entire buffer was consumed without error, and
// an error otherwise — use it to reject trailing garbage.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("wire: %d trailing bytes", len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.Remaining() < n {
		r.err = ErrTruncated
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a boolean encoded as one byte.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// Int32 reads a big-endian int32.
func (r *Reader) Int32() int32 { return int32(r.Uint32()) }

// Bytes32 reads a uint32-length-prefixed byte string. The returned slice
// aliases the input buffer.
func (r *Reader) Bytes32() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if uint64(n) > uint64(r.Remaining()) {
		r.err = ErrTruncated
		return nil
	}
	return r.take(int(n))
}
