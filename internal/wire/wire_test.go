package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter()
	w.Byte(0xab)
	w.Bool(true)
	w.Bool(false)
	w.Uint32(0xdeadbeef)
	w.Uint64(1 << 40)
	w.Int32(-17)
	w.Bytes32([]byte("hello"))
	w.Bytes32(nil)

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 0xab {
		t.Errorf("Byte = %#x", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %#x", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Errorf("Uint64 = %#x", got)
	}
	if got := r.Int32(); got != -17 {
		t.Errorf("Int32 = %d", got)
	}
	if got := r.Bytes32(); !bytes.Equal(got, []byte("hello")) {
		t.Errorf("Bytes32 = %q", got)
	}
	if got := r.Bytes32(); len(got) != 0 {
		t.Errorf("empty Bytes32 = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done() = %v", err)
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter()
	w.Uint64(42)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		if got := r.Uint64(); got != 0 {
			t.Errorf("cut=%d: truncated read returned %d", cut, got)
		}
		if r.Err() == nil {
			t.Errorf("cut=%d: no error on truncated read", cut)
		}
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.Uint32() // fails
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	// The single remaining byte must not be readable after the error.
	if r.Byte() != 0 {
		t.Fatal("read succeeded after sticky error")
	}
	if r.Done() == nil {
		t.Fatal("Done() should report the sticky error")
	}
}

func TestTrailingGarbage(t *testing.T) {
	w := NewWriter()
	w.Uint32(1)
	r := NewReader(append(w.Bytes(), 0xff))
	r.Uint32()
	if r.Done() == nil {
		t.Fatal("Done() accepted trailing bytes")
	}
}

func TestBytes32HugeLengthRejected(t *testing.T) {
	// A corrupt length prefix larger than the buffer must fail cleanly.
	w := NewWriter()
	w.Uint32(1 << 30)
	r := NewReader(w.Bytes())
	if got := r.Bytes32(); got != nil {
		t.Fatal("Bytes32 returned data for an oversized length")
	}
	if r.Err() == nil {
		t.Fatal("no error for oversized length")
	}
}

func TestQuickBytesRoundTrip(t *testing.T) {
	f := func(a []byte, b []byte, v uint32) bool {
		w := NewWriter()
		w.Bytes32(a)
		w.Uint32(v)
		w.Bytes32(b)
		r := NewReader(w.Bytes())
		ga := r.Bytes32()
		gv := r.Uint32()
		gb := r.Bytes32()
		return r.Done() == nil && bytes.Equal(ga, a) && gv == v && bytes.Equal(gb, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLen(t *testing.T) {
	w := NewWriter()
	if w.Len() != 0 {
		t.Fatal("new writer not empty")
	}
	w.Uint32(7)
	w.Bytes32([]byte{1, 2, 3})
	if w.Len() != 4+4+3 {
		t.Fatalf("Len = %d, want 11", w.Len())
	}
	r := NewReader(w.Bytes())
	if r.Remaining() != 11 {
		t.Fatalf("Remaining = %d", r.Remaining())
	}
}
