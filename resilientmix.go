package resilientmix

import (
	"io"

	"resilientmix/internal/analytic"
	"resilientmix/internal/core"
	"resilientmix/internal/erasure"
	"resilientmix/internal/experiments"
	"resilientmix/internal/membership"
	"resilientmix/internal/mixchoice"
	"resilientmix/internal/netsim"
	"resilientmix/internal/obs"
	"resilientmix/internal/obs/analyze"
	"resilientmix/internal/obs/prof"
	"resilientmix/internal/onioncrypt"
	"resilientmix/internal/perfbench"
	"resilientmix/internal/predictor"
	"resilientmix/internal/sim"
	"resilientmix/internal/stats"
)

// NodeID identifies a node in a simulated network; IDs are dense in
// [0, N).
type NodeID = netsim.NodeID

// Time is virtual simulation time in microseconds. Use the duration
// constants to build values.
type Time = sim.Time

// Virtual-time duration constants.
const (
	Millisecond = sim.Millisecond
	Second      = sim.Second
	Minute      = sim.Minute
	Hour        = sim.Hour
)

// Protocol selects one of the paper's three protocols.
type Protocol = core.Protocol

// The three protocols of the paper's evaluation.
const (
	// CurMix is classic single-path onion routing (the baseline).
	CurMix = core.CurMix
	// SimRep replicates the full message over each of k paths.
	SimRep = core.SimRep
	// SimEra spreads erasure-coded segments over k disjoint paths — the
	// paper's contribution.
	SimEra = core.SimEra
)

// Strategy selects how relay nodes are picked.
type Strategy = mixchoice.Strategy

// Mix choice strategies (§4.9).
const (
	// Random draws relays uniformly from the membership cache with no
	// liveness filtering — what existing protocols do.
	Random = mixchoice.Random
	// Biased ranks relays by the node liveness predictor.
	Biased = mixchoice.Biased
)

// Params configures a protocol session: protocol, k, r, L, mix strategy
// and failure-handling knobs. The zero value of each field selects the
// paper's default.
type Params = core.Params

// Session is an initiator's communication session with one responder:
// it owns k path slots, codes and allocates segments, detects path
// failures from end-to-end acks, and can proactively replace paths.
type Session = core.Session

// SessionStats aggregates a session's counters.
type SessionStats = core.SessionStats

// Receiver is the responder-side application endpoint.
type Receiver = core.Receiver

// Rendezvous glues two anonymous path sets together for mutual
// anonymity (§3's "additional level of redirection"): create one with
// Network.NewRendezvous, register hidden services with
// Session.RegisterService, contact them with Session.SendServiceMessage.
type Rendezvous = core.Rendezvous

// CoverAgent emits cover traffic from a node (§4.6).
type CoverAgent = core.CoverAgent

// CoverConfig tunes a cover agent.
type CoverConfig = core.CoverConfig

// MembershipMode selects oracle (OneHop-like, perfectly fresh) or
// gossip (epidemic, realistically stale) membership.
type MembershipMode = core.MembershipMode

// Membership modes.
const (
	OracleMembership = core.OracleMembership
	GossipMembership = core.GossipMembership
	// OneHopMembership runs the simplified hierarchical OneHop protocol
	// the paper's evaluation is built on (keepalive detection,
	// slice/unit leaders, explicit leave events).
	OneHopMembership = core.OneHopMembership
)

// NetworkConfig assembles a simulated P2P anonymizing network; the zero
// value of most fields selects the paper's §6.1 setup.
type NetworkConfig = core.WorldConfig

// Network is a fully wired simulated network. Create sessions with
// NewSession, start churn with StartChurn, and advance virtual time with
// Run.
type Network = core.World

// NewNetwork builds a simulated network from the configuration.
func NewNetwork(cfg NetworkConfig) (*Network, error) { return core.NewWorld(cfg) }

// Crypto suites for NetworkConfig.Suite.
var (
	// SuiteECIES is real cryptography: X25519 + SHA-256 KDF + AES-GCM.
	SuiteECIES onioncrypt.Suite = onioncrypt.ECIES{}
	// SuiteNull has identical wire overheads but no arithmetic — the
	// right choice for large simulations.
	SuiteNull onioncrypt.Suite = onioncrypt.Null{}
)

// LifetimeDist is a node session-time distribution usable as
// NetworkConfig.Lifetime / Downtime.
type LifetimeDist = stats.Dist

// ParetoLifetime returns the paper's churn model: Pareto session times
// with the given median (the paper uses one hour and shape alpha = 1).
func ParetoLifetime(alpha float64, median Time) (LifetimeDist, error) {
	return stats.ParetoWithMedian(alpha, median.Seconds())
}

// ExponentialLifetime returns memoryless session times with the given
// mean (Table 4's alternative).
func ExponentialLifetime(mean Time) (LifetimeDist, error) {
	return stats.NewExponential(mean.Seconds())
}

// UniformLifetime returns uniformly distributed session times on
// [lo, hi] (Table 4's adversarial case: old nodes die sooner).
func UniformLifetime(lo, hi Time) (LifetimeDist, error) {
	return stats.NewUniform(lo.Seconds(), hi.Seconds())
}

// ErasureCode is a reusable (m, n) systematic Reed-Solomon code: Split
// produces n segments, any m of which Reconstruct the message.
type ErasureCode = erasure.Code

// ErasureSegment is one coded segment.
type ErasureSegment = erasure.Segment

// NewErasureCode builds an (m, n) code (1 <= m <= n <= 256).
func NewErasureCode(m, n int) (*ErasureCode, error) { return erasure.New(m, n) }

// LivenessInfo is a cached node's liveness triple (§4.9).
type LivenessInfo = predictor.Info

// LivenessPredictor computes q = Δt_alive / (Δt_alive + Δt_since +
// (now - t_last)) — Equation 3; rank relays by it, highest first.
func LivenessPredictor(info LivenessInfo, now Time) float64 {
	return predictor.Q(info, now)
}

// AliveProbability converts the predictor q into the survival
// probability p = q^alpha of Equation 1.
func AliveProbability(q, alpha float64) float64 { return predictor.AliveProb(q, alpha) }

// DeliveryProbability returns the closed-form P(k) of §4.7: the
// probability that at least k/r of k paths deliver when each path
// succeeds independently with probability pathProb.
func DeliveryProbability(k, r int, pathProb float64) (float64, error) {
	return analytic.PSuccess(k, r, pathProb)
}

// PathSuccessProbability returns p = pa^L for per-node availability pa
// and path length L.
func PathSuccessProbability(pa float64, l int) float64 {
	return analytic.PathSuccessProb(pa, l)
}

// AllocationRegime classifies (p, r) into the paper's Observations 1-3,
// the guideline for choosing k (§4.7).
func AllocationRegime(pathProb float64, r int) analytic.Observation {
	return analytic.ClassifyObservation(pathProb, r)
}

// InitiatorAnonymity returns Equation 4 of §5: the probability that an
// attacker controlling fraction f of N nodes correctly identifies the
// initiator of a length-L path.
func InitiatorAnonymity(n int, f float64, l int) (float64, error) {
	return analytic.InitiatorProbability(n, f, l)
}

// Candidate is a node as seen by mix choice.
type Candidate = membership.Candidate

// SelectPaths picks k node-disjoint paths of l relays from candidates
// under the given strategy, excluding the listed nodes. Exposed for
// building custom protocols on the substrate.
var SelectPaths = mixchoice.SelectPaths

// Tracer receives structured trace events from every instrumented
// layer (engine, network, sessions, receivers). Set one on
// NetworkConfig.Tracer or ExperimentOptions.Tracer.
type Tracer = obs.Tracer

// TraceEvent is one structured trace event; see internal/obs for the
// event taxonomy and field conventions.
type TraceEvent = obs.Event

// TraceWriter streams trace events as deterministic JSONL.
type TraceWriter = obs.JSONL

// TraceRing keeps the last N trace events in memory.
type TraceRing = obs.Ring

// NewTraceWriter returns a tracer streaming JSONL to w; call Flush
// when the run ends.
func NewTraceWriter(w io.Writer) *TraceWriter { return obs.NewJSONL(w) }

// NewTraceRing returns a tracer keeping the last capacity events.
func NewTraceRing(capacity int) *TraceRing { return obs.NewRing(capacity) }

// MultiTracer fans events out to several tracers (nils are skipped).
var MultiTracer = obs.Multi

// NoopTracer discards every event; it measures the cost of an
// installed-but-trivial tracer against the nil fast path.
type NoopTracer = obs.Noop

// ParseTrace reads back a JSONL trace written by a TraceWriter.
var ParseTrace = obs.ParseJSONL

// TraceCollector keeps every emitted event in memory, for in-process
// analysis with AnalyzeTrace.
type TraceCollector = obs.Collector

// NewTraceCollector returns an empty in-memory trace collector.
func NewTraceCollector() *TraceCollector { return obs.NewCollector() }

// TraceFile is a JSONL trace sink on disk; paths ending in ".gz" are
// transparently gzip-compressed.
type TraceFile = obs.TraceFile

// CreateTraceFile opens a trace sink at path (gzip when the path ends
// in ".gz"); call Close when the run ends.
var CreateTraceFile = obs.CreateTraceFile

// OpenTraceReader opens a trace written by CreateTraceFile for
// reading, transparently decompressing gzip (detected by content, not
// extension).
var OpenTraceReader = obs.OpenTraceReader

// TraceAnalysis is the result of offline trace analytics: per-stream
// causal timelines, latency attribution and anonymity observables. See
// internal/obs/analyze and cmd/anontrace.
type TraceAnalysis = analyze.Result

// TraceAnalysisSummary is the analysis block of a trace analysis and
// of v2 run reports: stream accounting, integrity findings, latency
// attribution, anonymity observables.
type TraceAnalysisSummary = obs.AnalysisSummary

// AnalyzeTrace reconstructs every tagged message stream from an
// in-memory trace.
var AnalyzeTrace = analyze.FromEvents

// AnalyzeTraceFile analyzes a JSONL trace file (plain or gzip).
var AnalyzeTraceFile = analyze.ReadFile

// ReconcileAnalysis cross-checks a trace analysis against a run
// report's registry aggregates; it returns one description per
// mismatch, empty when the two views agree exactly.
var ReconcileAnalysis = analyze.Reconcile

// DiffThresholds bound how much a candidate report may regress from a
// baseline before DiffRunReports flags it.
type DiffThresholds = analyze.Thresholds

// DefaultDiffThresholds is the loose CI gate used by anontrace diff.
var DefaultDiffThresholds = analyze.DefaultThresholds

// DiffRunReports compares two run reports under thresholds, returning
// one violation per crossed limit.
var DiffRunReports = analyze.DiffReports

// MetricsRegistry is a named collection of counters, gauges and
// histograms; worlds record run aggregates into one.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// RunReport is the machine-readable outcome of one run, written by the
// -report flag of cmd/anonsim and cmd/anonbench.
type RunReport = obs.Report

// RunReportSchemaVersion is the report schema version this build
// writes (v2: percentiles and trace-analysis blocks).
const RunReportSchemaVersion = obs.ReportSchemaVersion

// ReadRunReport parses a report written with RunReport.WriteJSON.
var ReadRunReport = obs.ReadReport

// StartProfiles starts CPU and/or heap profiling; the returned stop
// function must run on every exit path.
var StartProfiles = prof.StartProfiles

// PerfReport is the machine-readable micro-benchmark summary written
// by anonbench -bench-json. BENCH_PR9.json at the repository root is
// the committed baseline CI gates against.
type PerfReport = perfbench.Report

// PerfRegression is one gated benchmark metric that moved past
// tolerance in the losing direction.
type PerfRegression = perfbench.Regression

// RunPerfBench executes the headline micro-benchmarks (erasure
// encode/decode throughput, engine event rate, allocation counts, and
// the sharded engine's K = 1..maxShards scaling curve; maxShards 0
// means the full curve up to K=8).
var RunPerfBench = perfbench.Run

// ReadPerfReport loads a benchmark report or baseline from disk.
var ReadPerfReport = perfbench.ReadFile

// ComparePerfReports gates a fresh report against a baseline at the
// given relative tolerance; a non-empty result is a CI failure.
var ComparePerfReports = perfbench.Compare

// PerfScalingGate enforces the absolute multi-core requirement on a
// fresh report: at least a 3x K=8-over-K=1 sharded-engine speedup on
// hosts with 8+ CPUs. Hosts with fewer CPUs record but are not gated.
var PerfScalingGate = perfbench.ScalingGate

// ExperimentOptions tunes reproduction scale (Quick shrinks everything).
type ExperimentOptions = experiments.Options

// ExperimentResult is a rendered table/figure reproduction.
type ExperimentResult = experiments.Result

// ExperimentIDs lists the reproducible artifacts: fig1..fig5, tab1..tab4.
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment reproduces one of the paper's tables or figures.
func RunExperiment(id string, opts ExperimentOptions) (*ExperimentResult, error) {
	return experiments.Run(id, opts)
}

// RunAllExperiments reproduces every table and figure in order.
func RunAllExperiments(opts ExperimentOptions) ([]*ExperimentResult, error) {
	return experiments.RunAll(opts)
}

// RenderExperiments renders results as aligned text tables.
func RenderExperiments(w io.Writer, results []*ExperimentResult) error {
	for _, r := range results {
		if err := r.Render(w); err != nil {
			return err
		}
	}
	return nil
}
