package resilientmix_test

import (
	"bytes"
	"math"
	"testing"

	rm "resilientmix"
)

// TestPublicAPIEndToEnd drives the whole system through the public
// facade only: build a network, establish a SimEra session with biased
// mix choice under churn, deliver a message, get a response.
func TestPublicAPIEndToEnd(t *testing.T) {
	life, err := rm.ParetoLifetime(1, rm.Hour)
	if err != nil {
		t.Fatal(err)
	}
	net, err := rm.NewNetwork(rm.NetworkConfig{
		N:        64,
		Seed:     7,
		Lifetime: life,
		Pinned:   []rm.NodeID{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.StartChurn(); err != nil {
		t.Fatal(err)
	}
	net.Run(50 * rm.Minute) // churn warm-up past the Pareto minimum

	sess, err := net.NewSession(0, 1, rm.Params{
		Protocol:             rm.SimEra,
		K:                    4,
		R:                    2,
		Strategy:             rm.Biased,
		MaxEstablishAttempts: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ok bool
	sess.OnEstablished = func(o bool, _ int) { ok = o }
	sess.Establish()
	net.Run(net.Eng.Now() + rm.Minute)
	if !ok {
		t.Fatal("session did not establish")
	}

	var delivered []byte
	net.Receivers[1].SetOnDelivered(func(mid uint64, data []byte, _ rm.Time) {
		delivered = data
		net.Receivers[1].Respond(mid, []byte("pong"), nil)
	})
	var response []byte
	sess.OnResponse = func(_ uint64, data []byte, _ rm.Time) { response = data }

	if _, err := sess.SendMessage([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	net.Run(net.Eng.Now() + rm.Minute)
	if string(delivered) != "ping" || string(response) != "pong" {
		t.Fatalf("delivered=%q response=%q", delivered, response)
	}
}

func TestPublicErasure(t *testing.T) {
	code, err := rm.NewErasureCode(3, 6)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("public api erasure coding")
	segs, err := code.Split(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := code.Reconstruct([]rm.ErasureSegment{segs[5], segs[1], segs[3]})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("reconstruction failed")
	}
}

func TestPublicAnalytics(t *testing.T) {
	p := rm.PathSuccessProbability(0.95, 3)
	pk, err := rm.DeliveryProbability(8, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if pk <= 0 || pk > 1 {
		t.Fatalf("P(k) = %g", pk)
	}
	if rm.AllocationRegime(p, 2) != 1 {
		t.Fatalf("regime = %v, want Observation 1", rm.AllocationRegime(p, 2))
	}
	anon, err := rm.InitiatorAnonymity(1024, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if anon <= 1.0/1024 || anon >= 1 {
		t.Fatalf("anonymity bound %g out of range", anon)
	}
}

func TestPublicPredictor(t *testing.T) {
	info := rm.LivenessInfo{AliveFor: 2 * rm.Hour, Since: 0, LastHeard: rm.Hour}
	q := rm.LivenessPredictor(info, rm.Hour)
	if q != 1 {
		t.Fatalf("q = %g", q)
	}
	p := rm.AliveProbability(0.5, 1)
	if math.Abs(p-0.5) > 1e-12 {
		t.Fatalf("p = %g", p)
	}
}

func TestPublicLifetimeConstructors(t *testing.T) {
	pareto, err := rm.ParetoLifetime(1, rm.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pareto.Median()-3600) > 1e-6 {
		t.Fatalf("Pareto median %g", pareto.Median())
	}
	exp, err := rm.ExponentialLifetime(rm.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Mean() != 3600 {
		t.Fatalf("exp mean %g", exp.Mean())
	}
	uni, err := rm.UniformLifetime(6*rm.Minute, 114*rm.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if uni.Mean() != 3600 {
		t.Fatalf("uniform mean %g", uni.Mean())
	}
	if _, err := rm.ParetoLifetime(1, 0); err == nil {
		t.Fatal("zero median accepted")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	ids := rm.ExperimentIDs()
	if len(ids) != 18 {
		t.Fatalf("%d experiments", len(ids))
	}
	// Run the cheapest one through the facade.
	res, err := rm.RunExperiment("fig1", rm.ExperimentOptions{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rm.RenderExperiments(&buf, []*rm.ExperimentResult{res}); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("nothing rendered")
	}
}

func TestPublicCoverTraffic(t *testing.T) {
	net, err := rm.NewNetwork(rm.NetworkConfig{N: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	agent, err := net.NewCoverAgent(5, rm.CoverConfig{Interval: 30 * rm.Second})
	if err != nil {
		t.Fatal(err)
	}
	agent.Start()
	net.Run(5 * rm.Minute)
	if agent.Stats().MessagesSent == 0 {
		t.Fatal("cover agent idle")
	}
}
