// Property test for the sharded engine's central promise: the shard
// count K is a pure execution detail. One seeded 256-node churn-plus-
// traffic scenario is run at K = 1, 2, 4, 8; every K must produce a
// byte-identical JSONL trace (compared by hash, like the sequential
// trace oracle) and the same executed-event and delivery totals.
package resilientmix_test

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"resilientmix/internal/churn"
	"resilientmix/internal/netsim"
	"resilientmix/internal/obs"
	"resilientmix/internal/shardworld"
	"resilientmix/internal/sim"
)

// shardedScenario runs the canonical shard-oracle workload — 256
// Pareto-churned nodes (two pinned), 1% link loss, every node
// messaging a random peer every ~10 s — for one simulated hour at the
// given shard count, and returns the trace hash plus the counters that
// must be K-invariant.
func shardedScenario(t testing.TB, k int) (trace [32]byte, executed uint64, st netsim.Stats, transitions uint64) {
	t.Helper()
	var buf bytes.Buffer
	tr := obs.NewJSONL(&buf)
	w, err := shardworld.New(shardworld.Config{
		Nodes:    256,
		Shards:   k,
		Seed:     1234,
		LossRate: 0.01,
		Lifetime: churn.DefaultLifetime(),
		Pinned:   []netsim.NodeID{0, 1},
		Tracer:   tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.Run(sim.Hour)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes()), w.Cluster.Executed(), w.Net.Stats(), w.Churn.Transitions()
}

func TestShardCountInvariance(t *testing.T) {
	refTrace, refExec, refStats, refTrans := shardedScenario(t, 1)
	if refExec == 0 || refStats.Delivered == 0 || refTrans == 0 {
		t.Fatalf("reference run too quiet: executed=%d delivered=%d transitions=%d",
			refExec, refStats.Delivered, refTrans)
	}
	for _, k := range []int{2, 4, 8} {
		trace, exec, st, trans := shardedScenario(t, k)
		if trace != refTrace {
			t.Errorf("K=%d trace hash %x differs from K=1 hash %x", k, trace, refTrace)
		}
		if exec != refExec {
			t.Errorf("K=%d executed %d events, K=1 executed %d", k, exec, refExec)
		}
		if st != refStats {
			t.Errorf("K=%d network stats %+v differ from K=1 %+v", k, st, refStats)
		}
		if trans != refTrans {
			t.Errorf("K=%d saw %d churn transitions, K=1 saw %d", k, trans, refTrans)
		}
	}
}
