// Regression tests for the observability layer's two core promises:
// equal seeds produce byte-identical JSONL traces, and the trace stream
// reconciles exactly with the metrics registry the run report is built
// from. A third test checks that installing a tracer never perturbs the
// simulation itself (tracing draws no engine randomness).
package resilientmix_test

import (
	"bytes"
	"crypto/sha256"
	"strings"
	"testing"

	rm "resilientmix"

	"resilientmix/internal/obs"
)

// tracedScenario runs a fixed churn-plus-messaging scenario: a 64-node
// Pareto-churned network warmed up one hour, one SimEra(4,2) session
// between the pinned endpoints, then ten minutes of 1 KB messages every
// 10 s. It exercises every simulator-side event type: engine scheduling,
// node transitions, sends, drops (loss plus churn), deliveries, path
// construction and death, segments and reconstruction.
func tracedScenario(t testing.TB, seed int64, loss float64, tr rm.Tracer, reg *rm.MetricsRegistry) rm.SessionStats {
	t.Helper()
	lifetime, err := rm.ParetoLifetime(1, rm.Hour)
	if err != nil {
		t.Fatal(err)
	}
	net, err := rm.NewNetwork(rm.NetworkConfig{
		N:        64,
		Seed:     seed,
		Lifetime: lifetime,
		Pinned:   []rm.NodeID{0, 1},
		LossRate: loss,
		Tracer:   tr,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.StartChurn(); err != nil {
		t.Fatal(err)
	}
	net.Run(rm.Hour)

	sess, err := net.NewSession(0, 1, rm.Params{
		Protocol:             rm.SimEra,
		K:                    4,
		R:                    2,
		MaxEstablishAttempts: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ok bool
	sess.OnEstablished = func(o bool, _ int) { ok = o }
	sess.Establish()
	net.Run(net.Eng.Now() + 5*rm.Minute)
	if !ok {
		t.Fatal("establishment failed")
	}
	end := net.Eng.Now() + 10*rm.Minute
	msg := make([]byte, 1024)
	var tick func()
	tick = func() {
		if net.Eng.Now() >= end {
			return
		}
		if sess.Established() {
			sess.SendMessage(msg)
		}
		net.Eng.Schedule(10*rm.Second, tick)
	}
	net.Eng.Schedule(0, tick)
	net.Run(end + rm.Minute)
	return sess.Stats()
}

// traceBytes captures the full JSONL trace of one scenario run.
func traceBytes(t *testing.T, seed int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	tr := rm.NewTraceWriter(&buf)
	tracedScenario(t, seed, 0.02, tr, nil)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceDeterminism is the regression guard for reproducible traces:
// two runs with the same seed must emit byte-identical JSONL, and a
// different seed must not.
func TestTraceDeterminism(t *testing.T) {
	a := traceBytes(t, 42)
	b := traceBytes(t, 42)
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
	if sha256.Sum256(a) != sha256.Sum256(b) {
		t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(a), len(b))
	}
	c := traceBytes(t, 43)
	if sha256.Sum256(a) == sha256.Sum256(c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestTracingDoesNotPerturbSimulation checks the nil fast path and an
// installed tracer yield the exact same protocol outcome: emitting
// events must never consume engine randomness or reorder events.
func TestTracingDoesNotPerturbSimulation(t *testing.T) {
	bare := tracedScenario(t, 7, 0.01, nil, nil)
	traced := tracedScenario(t, 7, 0.01, rm.NoopTracer{}, rm.NewMetricsRegistry())
	if bare != traced {
		t.Fatalf("tracing changed the simulation:\n  nil tracer: %+v\n  noop tracer: %+v", bare, traced)
	}
}

// TestTraceTaggedDataPlane checks the data-plane tagging contract:
// segment sends carry their path-slot, tagged wire events carry
// slot and hop depth (untagged background traffic stays slot/hop -1),
// and the offline analyzer reconstructs the tagged streams with zero
// integrity errors while reconciling exactly with the registry.
func TestTraceTaggedDataPlane(t *testing.T) {
	col := rm.NewTraceCollector()
	reg := rm.NewMetricsRegistry()
	tracedScenario(t, 21, 0.03, col, reg)

	var segSends, taggedWire, untaggedWire int
	maxHop := -1
	for _, e := range col.Events() {
		switch e.Type {
		case obs.SegmentSent:
			segSends++
			if e.ID == 0 || e.Slot < 0 || e.Hop != -1 {
				t.Fatalf("segment_sent missing tag fields: %+v", e)
			}
		case obs.MsgSent, obs.MsgDelivered, obs.MsgDropped:
			if e.ID != 0 && e.Slot >= 0 && e.Hop >= 0 {
				taggedWire++
				if e.Hop > maxHop {
					maxHop = e.Hop
				}
			} else {
				untaggedWire++
				if e.Slot != -1 || e.Hop != -1 {
					t.Fatalf("untagged wire event with slot/hop set: %+v", e)
				}
			}
		}
	}
	if segSends == 0 || taggedWire == 0 {
		t.Fatalf("no tagged data-plane traffic (%d segment sends, %d tagged wire events)", segSends, taggedWire)
	}
	if untaggedWire == 0 {
		t.Fatal("no untagged background traffic; construction/ack traffic should stay untagged")
	}
	if maxHop < 1 {
		t.Fatalf("tagged hop depth never advanced past %d; relays are not stamping Tag.Next()", maxHop)
	}

	res := rm.AnalyzeTrace(col.Events())
	if res.Summary.IntegrityErrors != 0 {
		t.Fatalf("%d integrity errors:\n%v", res.Summary.IntegrityErrors, res.Summary.IntegrityDetails)
	}
	snap := reg.Snapshot()
	rep := &rm.RunReport{Metrics: &snap}
	if problems := rm.ReconcileAnalysis(res, rep); len(problems) != 0 {
		t.Fatalf("analysis does not reconcile with the registry:\n%v", problems)
	}
}

// TestTraceReconcilesWithRegistry checks the -report contract: the
// drop-reason counters the report is built from must match the
// MsgDropped events in the trace exactly, reason by reason, and the
// send/delivery counters must match their event counts.
func TestTraceReconcilesWithRegistry(t *testing.T) {
	var buf bytes.Buffer
	tr := rm.NewTraceWriter(&buf)
	reg := rm.NewMetricsRegistry()
	tracedScenario(t, 13, 0.05, tr, reg)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	events, err := rm.ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(len(events)) != tr.Events() {
		t.Fatalf("parsed %d events, writer recorded %d", len(events), tr.Events())
	}
	var counts obs.Counts
	for _, e := range events {
		counts.Emit(e)
	}

	drops := reg.CountersWithPrefix("net.dropped.")
	var registryTotal uint64
	for name, want := range drops {
		registryTotal += want
		reason := strings.TrimPrefix(name, "net.dropped.")
		var got uint64
		for _, r := range obs.Reasons() {
			if r.String() == reason {
				got = counts.Dropped(r)
			}
		}
		if got != want {
			t.Errorf("drop reason %q: trace has %d events, registry counted %d", reason, got, want)
		}
	}
	if traceTotal := counts.Of(obs.MsgDropped); traceTotal != registryTotal {
		t.Errorf("total drops: trace has %d, registry counted %d", traceTotal, registryTotal)
	}
	if registryTotal == 0 {
		t.Error("scenario produced no drops; reconciliation test is vacuous")
	}
	if got, want := counts.Of(obs.MsgSent), reg.Counter("net.sent").Value(); got != want {
		t.Errorf("sends: trace has %d, registry counted %d", got, want)
	}
	if got, want := counts.Of(obs.MsgDelivered), reg.Counter("net.delivered").Value(); got != want {
		t.Errorf("deliveries: trace has %d, registry counted %d", got, want)
	}
}
